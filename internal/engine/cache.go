package engine

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// evictionPolicy orders one answer-cache shard's resident keys and
// picks eviction victims — the seam the paper's replacement-policy
// suite plugs into (internal/policy.ForCache adapts any registered
// simulator policy to this method set; the method sets are identical,
// so a policy.CachePolicy satisfies evictionPolicy structurally).
//
// Contract — every call happens under the owning answerCache's mutex,
// so implementations need no locking of their own:
//
//   - OnHit(key) observes a lookup hit on a resident key (or an
//     overwrite of an existing entry) and refreshes its
//     recency/priority state.
//   - Victim(incoming) is called only when the cache is full and
//     incoming is absent: the policy returns the resident key to
//     evict, or bypass=true to request that incoming not be cached at
//     all. On bypass=false the cache removes the victim and then calls
//     OnInsert(incoming); the policy must stop tracking the victim
//     when Victim returns.
//   - OnInsert(key) observes the insertion of a new key, after any
//     eviction.
//
// Eviction policies only ever decide which entries stay resident —
// answers are pure functions of the cache key (see the package
// comment), so no policy choice can change a single answer byte, only
// hit/miss totals.
type evictionPolicy interface {
	Name() string
	OnHit(key string)
	OnInsert(key string)
	Victim(incoming string) (victim string, bypass bool)
}

// lruList is the native LRU evictionPolicy: a recency list over the
// resident keys, exactly the pre-bridge answer-cache semantics. It is
// the Config.CachePolicy default, kept native (rather than routed
// through the simulator adapter) so the default ask path carries no
// extra per-access state.
type lruList struct {
	ll *list.List // front = most recently used
	at map[string]*list.Element
}

func newLRUList() *lruList {
	return &lruList{ll: list.New(), at: map[string]*list.Element{}}
}

func (*lruList) Name() string { return "lru" }

func (p *lruList) OnHit(key string) {
	if el, ok := p.at[key]; ok {
		p.ll.MoveToFront(el)
	}
}

func (p *lruList) OnInsert(key string) {
	p.at[key] = p.ll.PushFront(key)
}

func (p *lruList) Victim(string) (string, bool) {
	oldest := p.ll.Back()
	if oldest == nil {
		// Unreachable under the contract (Victim runs only on a full
		// cache); bypassing is the safe refusal.
		return "", true
	}
	key := p.ll.Remove(oldest).(string)
	delete(p.at, key)
	return key, false
}

// answerCache is one shard of the bounded answer cache: a capacity-
// bounded key→Answer map whose residency is ordered by an
// evictionPolicy. Keys are the full (retriever, model, question)
// triple rendered by cacheKey, so an engine swap of retriever or
// backend can never serve a stale entry even if a cache were shared.
// All methods are safe for concurrent use.
//
// The hit/miss counters are deliberately not advanced by touch/peek:
// cachedAsk records exactly one hit or miss per answered ask based on
// how it was ultimately served (direct hit, coalesced single-flight
// follower, or a pipeline run), so the totals track answered
// cache-routed asks — not raw map probes, which would double-count
// single-flight retries.
type answerCache struct {
	mu      sync.Mutex
	cap     int
	pol     evictionPolicy
	entries map[string]Answer

	hits     atomic.Uint64
	misses   atomic.Uint64
	bypasses atomic.Uint64
}

// newAnswerCache creates a cache bounded to capacity entries (minimum
// 1) whose eviction order is decided by pol.
func newAnswerCache(capacity int, pol evictionPolicy) *answerCache {
	if capacity < 1 {
		capacity = 1
	}
	return &answerCache{
		cap:     capacity,
		pol:     pol,
		entries: map[string]Answer{},
	}
}

// touch returns the cached answer for key and refreshes its
// recency/priority state via the policy. It does not count hits or
// misses — see the answerCache comment.
func (c *answerCache) touch(key string) (Answer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ans, ok := c.entries[key]
	if !ok {
		return Answer{}, false
	}
	c.pol.OnHit(key)
	return ans, true
}

// peek returns the cached answer without touching recency — used when
// a single-flight retry re-checks the cache after a leader abort, so
// one Ask never perturbs the policy state more than once.
func (c *answerCache) peek(key string) (Answer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ans, ok := c.entries[key]
	return ans, ok
}

// put stores the answer under key. On a full cache the policy picks
// the victim; a policy may instead decline the insertion entirely
// (bypass), leaving the resident set untouched — sound because answers
// are recomputable pure functions of the key.
func (c *answerCache) put(key string, ans Answer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.entries[key] = ans
		c.pol.OnHit(key) // refresh, exactly as the old MoveToFront did
		return
	}
	if len(c.entries) >= c.cap {
		victim, bypass := c.pol.Victim(key)
		if bypass {
			c.bypasses.Add(1)
			return
		}
		delete(c.entries, victim)
	}
	c.entries[key] = ans
	c.pol.OnInsert(key)
}

// counters returns (hits, misses, bypasses, live entries).
func (c *answerCache) counters() (hits, misses, bypasses uint64, entries int) {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), c.bypasses.Load(), n
}
