package sim

import "cachemind/internal/trace"

// Prefetcher observes the LLC demand stream and proposes line addresses
// to prefetch — the substrate for the paper's policy-prefetcher
// interaction discussion (§1, PACIPV reference) and the prefetcher
// ablation benchmarks.
type Prefetcher interface {
	// Name identifies the prefetcher.
	Name() string
	// OnAccess observes one demand access and returns line-aligned
	// addresses to prefetch (possibly none).
	OnAccess(info AccessInfo, hit bool) []uint64
}

// NextLinePrefetcher prefetches the next sequential line on every
// demand miss.
type NextLinePrefetcher struct {
	// Degree is how many sequential lines to prefetch per miss
	// (default 1).
	Degree int
}

// Name implements Prefetcher.
func (*NextLinePrefetcher) Name() string { return "nextline" }

// OnAccess implements Prefetcher.
func (p *NextLinePrefetcher) OnAccess(info AccessInfo, hit bool) []uint64 {
	if hit {
		return nil
	}
	degree := p.Degree
	if degree <= 0 {
		degree = 1
	}
	out := make([]uint64, degree)
	for i := range out {
		out[i] = info.LineAddr + uint64(i+1)*trace.LineSize
	}
	return out
}

// StridePrefetcher is a PC-indexed stride prefetcher: per PC it tracks
// the last address and last stride; two consecutive equal strides make
// the entry confident and trigger prefetches ahead along the stride.
type StridePrefetcher struct {
	// Degree is how many strides ahead to prefetch (default 2).
	Degree int
	table  map[uint64]*strideEntry
}

type strideEntry struct {
	lastAddr  uint64
	stride    int64
	confident bool
}

// NewStridePrefetcher creates a stride prefetcher.
func NewStridePrefetcher(degree int) *StridePrefetcher {
	if degree <= 0 {
		degree = 2
	}
	return &StridePrefetcher{Degree: degree, table: map[uint64]*strideEntry{}}
}

// Name implements Prefetcher.
func (*StridePrefetcher) Name() string { return "stride" }

// OnAccess implements Prefetcher.
func (p *StridePrefetcher) OnAccess(info AccessInfo, hit bool) []uint64 {
	e, ok := p.table[info.PC]
	if !ok {
		p.table[info.PC] = &strideEntry{lastAddr: info.LineAddr}
		return nil
	}
	stride := int64(info.LineAddr) - int64(e.lastAddr)
	e.confident = stride != 0 && stride == e.stride
	e.stride = stride
	e.lastAddr = info.LineAddr
	if !e.confident {
		return nil
	}
	out := make([]uint64, 0, p.Degree)
	next := int64(info.LineAddr)
	for i := 0; i < p.Degree; i++ {
		next += stride
		if next <= 0 {
			break
		}
		out = append(out, uint64(next))
	}
	return out
}

// AttachPrefetcher installs a prefetcher on the machine's LLC demand
// stream. Prefetched lines fill the LLC without stalling the core.
func (m *Machine) AttachPrefetcher(p Prefetcher) { m.prefetcher = p }
