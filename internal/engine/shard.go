package engine

import (
	"container/list"
	"runtime"
	"sync"
)

// Sharding design note
//
// The engine's three mutable tables — the session map, the answer LRU,
// and the single-flight table — were protected by single global mutexes
// through PR 2, which serialized every ask no matter how many cores
// served traffic. They are now each split into Config.Shards hash-keyed
// shards with one lock per shard:
//
//   - a cache key (retriever\x00model\x00question) always hashes to the
//     same cache/flight shard, so whether a lookup hits, and which
//     single-flight leader a concurrent miss joins, is independent of
//     the shard count — hit/miss totals for any fixed ask sequence are
//     identical at 1 shard and at N;
//   - a session ID always hashes to the same session shard, so one
//     session's turns stay totally ordered under that shard's lock
//     exactly as before;
//   - LRU eviction and turn compaction run per shard over that shard's
//     slice of the global budget (shardBudget), so the semantics are
//     the PR 2 semantics applied shard-locally. The one observable
//     difference: recency competition is per shard, so which session
//     (or cached answer) is evicted under pressure depends on the
//     hash layout. Tests that pin exact global LRU order set Shards: 1.
//
// Answers themselves never touch shard state (they are pure functions
// of retriever, model, and question — see the package comment), so
// sharding cannot change a single byte of any answer.

// DefaultShards is the shard count when Config.Shards is zero: one
// shard per schedulable CPU, so lock contention scales out with the
// hardware the same way GOMAXPROCS does.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// shardIndex maps a key to a shard by FNV-1a (inlined to avoid a
// hash.Hash allocation on the ask hot path).
func shardIndex(key string, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// shardBudget divides a global entry budget across n shards: the
// remainder is spread over the leading shards and every shard keeps at
// least one entry, so the budgets sum to max(total, n) — a global
// budget smaller than the shard count rounds up to one entry per
// shard. A non-positive total (unlimited / disabled) is passed through
// to every shard unchanged.
func shardBudget(total, n int) []int {
	out := make([]int, n)
	if total <= 0 {
		for i := range out {
			out[i] = total
		}
		return out
	}
	base, rem := total/n, total%n
	for i := range out {
		b := base
		if i < rem {
			b++
		}
		if b < 1 {
			b = 1
		}
		out[i] = b
	}
	return out
}

// sessionShard owns one hash slice of the session table: the sessions
// that map here, their recency list (front = most recently asked), and
// this shard's share of the MaxSessions budget.
type sessionShard struct {
	mu        sync.Mutex
	sessions  map[string]*list.Element // of *session
	byRecency *list.List
	max       int // <= 0: unlimited
}

func newSessionShard(max int) *sessionShard {
	return &sessionShard{
		sessions:  map[string]*list.Element{},
		byRecency: list.New(),
		max:       max,
	}
}

// flightShard owns one hash slice of the single-flight table:
// in-progress uncached answers whose cache keys map here.
type flightShard struct {
	mu       sync.Mutex
	inflight map[string]*inflightCall
}

func newFlightShard() *flightShard {
	return &flightShard{inflight: map[string]*inflightCall{}}
}
