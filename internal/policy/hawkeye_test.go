package policy

import (
	"testing"

	"cachemind/internal/sim"
	"cachemind/internal/trace"
	"cachemind/internal/workload"
)

func TestHawkeyeRegistered(t *testing.T) {
	p, err := New("hawkeye", llcCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "hawkeye" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestHawkeyeRunsAllWorkloads(t *testing.T) {
	for _, w := range []*workload.Workload{workload.Astar, workload.LBM, workload.MCF, workload.MILC} {
		c := replay(t, "hawkeye", llcCfg(), w.Generate(20000, 4), Options{})
		if c.Hits == 0 {
			t.Errorf("%s: hawkeye got zero hits", w.Name())
		}
		if c.Hits+c.Misses != c.Accesses {
			t.Errorf("%s: accounting broken", w.Name())
		}
	}
}

func TestHawkeyeBoundedByBelady(t *testing.T) {
	accs := workload.Astar.Generate(30000, 6)
	hawkeye := replay(t, "hawkeye", llcCfg(), accs, Options{})
	belady := replay(t, "belady", llcCfg(), accs, Options{Oracle: trace.NextUseOracle(accs)})
	if hawkeye.Hits > belady.Hits {
		t.Errorf("hawkeye hits (%d) exceed Belady's (%d)", hawkeye.Hits, belady.Hits)
	}
}

// On the hot+scan mix Hawkeye's predictor must learn the scan PC is
// cache-averse and the hot PC friendly, beating LRU decisively.
func TestHawkeyeScanResistance(t *testing.T) {
	var accs []trace.Access
	scanBase := uint64(1 << 30)
	scanPos := uint64(0)
	for iter := 0; iter < 60; iter++ {
		for h := uint64(0); h < 64; h++ {
			for rep := 0; rep < 2; rep++ { // touched twice: in-window reuse
				accs = append(accs, trace.Access{PC: 0x1000, Addr: h * trace.LineSize})
			}
		}
		for s := uint64(0); s < 2048; s++ {
			accs = append(accs, trace.Access{PC: 0x2000, Addr: scanBase + scanPos*trace.LineSize})
			scanPos++
		}
	}
	lruC := replay(t, "lru", llcCfg(), accs, Options{})
	hawkC := replay(t, "hawkeye", llcCfg(), accs, Options{})
	if hawkC.Hits <= lruC.Hits {
		t.Errorf("hawkeye hits (%d) should exceed LRU hits (%d) on hot+scan mix", hawkC.Hits, lruC.Hits)
	}
}

// The predictor must learn divergent classes for a reused PC and a
// streaming PC.
func TestHawkeyePredictorLearnsClasses(t *testing.T) {
	cfg := sim.Config{Name: "t", Sets: 16, Ways: 4, Latency: 1}
	h := NewHawkeye(cfg)
	c := sim.NewCache(cfg, h)
	tm := uint64(0)
	// Sampled set 0: hot line reused many times by hotPC; stream by
	// streamPC never reuses.
	hotPC, streamPC := uint64(0x1111), uint64(0x2222)
	stream := uint64(1 << 20)
	for i := 0; i < 400; i++ {
		tm++
		c.Access(sim.AccessInfo{Time: tm, PC: hotPC, LineAddr: 0})
		tm++
		c.Access(sim.AccessInfo{Time: tm, PC: streamPC, LineAddr: stream})
		stream += 16 * trace.LineSize // stays in set 0
	}
	if !h.friendly(hotPC) {
		t.Error("hot PC should be classified cache-friendly")
	}
	if h.friendly(streamPC) {
		t.Error("streaming PC should be classified cache-averse")
	}
	fr, total := h.PredictorSnapshot()
	if total == 0 {
		t.Error("predictor learned nothing")
	}
	if fr > total {
		t.Error("snapshot accounting broken")
	}
}

func TestHawkeyeScores(t *testing.T) {
	accs := workload.LBM.Generate(10000, 2)
	p := MustNew("hawkeye", llcCfg(), Options{})
	c := sim.NewCache(llcCfg(), p)
	for i, a := range accs {
		c.Access(sim.AccessInfo{Time: uint64(i), PC: a.PC, LineAddr: a.LineAddr()})
	}
	if got := c.Scores(0); len(got) != llcCfg().Ways {
		t.Errorf("scores = %d entries", len(got))
	}
}
