// Package generator implements CacheMind's response-generation module
// (paper §3.2.4): it grounds answers in retrieved context, assembles
// prompts (with optional one-shot/few-shot examples and conversation
// memory), and applies the generator backend's behavioural profile —
// successful draws emit the grounded answer, failed draws emit realistic
// perturbations (flipped verdicts, skewed values, accepted false
// premises, evidence-poor analysis), reproducing the paper's per-model
// error structure on top of real retrieval.
package generator

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"cachemind/internal/llm"
	"cachemind/internal/memory"
	"cachemind/internal/nlu"
	"cachemind/internal/queryir"
	"cachemind/internal/retriever"
)

// Answer is one generated response.
type Answer struct {
	// Text is the full human-readable response.
	Text string
	// Verdict is the canonical short answer used for exact-match
	// grading: "Cache Hit", "Cache Miss", "TRICK", a policy or workload
	// name, or a formatted number.
	Verdict string
	// Value carries the numeric answer when HasValue.
	Value    float64
	HasValue bool
	// Grounded reports whether the answer was derived from retrieval
	// evidence (false means the model answered without support).
	Grounded bool
}

// Generator couples a behavioural profile with prompt assembly.
//
// Concurrency contract: a Generator with a nil Memory and fixed Shots
// is read-only — answers are pure functions of (profile, question,
// context) — and therefore safe for concurrent use; internal/engine
// shares one such instance across all sessions. Setting Memory makes
// Answer/AnalysisAnswer mutate conversation state, so that generator
// must be confined to one goroutine or guarded externally.
type Generator struct {
	Profile *llm.Profile
	// Memory, when non-nil, contributes conversation context.
	Memory *memory.Conversation
	// Shots are in-context examples (one-shot/few-shot prompting).
	Shots []llm.Example
}

// New creates a generator for the given backend profile.
func New(p *llm.Profile) *Generator { return &Generator{Profile: p} }

// BuildPrompt assembles the generator prompt for inspection and the
// chat front-end.
func (g *Generator) BuildPrompt(question string, ctx retriever.Context) llm.Prompt {
	p := llm.Prompt{
		System:   "You are a cache-replacement analysis assistant. Ground every answer in the provided trace context.",
		Examples: g.Shots,
		Context:  ctx.Text,
		Question: question,
	}
	if g.Memory != nil {
		if mem := g.Memory.ContextBlock(question); mem != "" {
			p.Context = mem + "\n\n" + p.Context
		}
	}
	return p
}

// Answer generates the response for a question of the given category.
// qid must be stable per question (it seeds the success draw). ctx is
// the request context, threaded into the backend invocation
// (llm.Profile.Invoke): a canceled request returns the context's error
// before any answer text is rendered or conversation memory mutated.
// For a live context the answer is deterministic.
func (g *Generator) Answer(ctx context.Context, qid, category, question string, rctx retriever.Context) (Answer, error) {
	grounded, ok := deriveGrounded(question, rctx)
	success, err := g.Profile.Invoke(ctx, category, qid, rctx.Quality, len(g.Shots))
	if err != nil {
		return Answer{}, err
	}

	var ans Answer
	switch {
	case ok && success:
		ans = grounded
		ans.Grounded = true
	case ok: // evidence available but the model fumbles it
		ans = g.perturb(qid, grounded, rctx)
		ans.Grounded = false
	default: // no usable evidence: answer is a confabulation
		ans = g.confabulate(qid, rctx)
		ans.Grounded = false
	}
	if g.Memory != nil {
		g.Memory.Add(question, ans.Text)
	}
	return ans, nil
}

// deriveGrounded computes the evidence-supported answer from the
// retrieval context, per intent. ok is false when the context cannot
// support an answer.
func deriveGrounded(question string, ctx retriever.Context) (Answer, bool) {
	// A detected premise violation dominates every intent: the correct
	// behaviour is rejection.
	if v := ctx.PremiseViolation(); v != nil {
		return Answer{
			Text:    fmt.Sprintf("TRICK: the question's premise is invalid — %v.", v),
			Verdict: "TRICK",
		}, true
	}

	switch ctx.Parsed.Intent {
	case nlu.IntentHitMiss:
		for _, ex := range ctx.Executed {
			if ex.Err != nil || ex.Result.Kind != queryir.KindRows || len(ex.Result.Rows) == 0 {
				continue
			}
			rec := ex.Result.Frame.Record(ex.Result.Rows[0])
			verdict := "Cache Miss"
			if rec.Hit {
				verdict = "Cache Hit"
			}
			txt := fmt.Sprintf("%s. PC %s accessing address 0x%x in %s under %s %s.",
				verdict, queryir.PCRef(rec.PC), rec.Addr, ex.Query.Workload, ex.Query.Policy,
				map[bool]string{true: "hits in the cache", false: "misses"}[rec.Hit])
			if rec.EvictedAddr != 0 {
				txt += fmt.Sprintf(" The miss evicted 0x%x, needed again in %d accesses.",
					rec.EvictedAddr, rec.EvictedReuseDist)
			}
			return Answer{Text: txt, Verdict: verdict}, true
		}
		return Answer{}, false

	case nlu.IntentMissRate, nlu.IntentArithmetic, nlu.IntentCount:
		for _, ex := range ctx.Executed {
			if ex.Err != nil || ex.Result.Kind != queryir.KindScalar {
				continue
			}
			v := ex.Result.Scalar
			var txt, verdict string
			switch ex.Query.Agg {
			case queryir.AggMissRate, queryir.AggHitRate:
				kind := "miss rate"
				if ex.Query.Agg == queryir.AggHitRate {
					kind = "hit rate"
				}
				subject := describeSubject(ex.Query)
				txt = fmt.Sprintf("The %s%s is %.2f%%.", kind, subject, v)
				verdict = fmt.Sprintf("%.2f%%", v)
			case queryir.AggCount:
				txt = fmt.Sprintf("It appears %d times%s.", int(v), describeSubject(ex.Query))
				verdict = fmt.Sprintf("%d", int(v))
			default:
				txt = fmt.Sprintf("The %s of %s%s is %.2f.", ex.Query.Agg, ex.Query.Field, describeSubject(ex.Query), v)
				verdict = fmt.Sprintf("%.2f", v)
			}
			return Answer{Text: txt, Verdict: verdict, Value: v, HasValue: true}, true
		}
		return Answer{}, false

	case nlu.IntentPolicyCompare:
		best, ok := argbestPolicy(ctx, strings.Contains(strings.ToLower(question), "hit"))
		if !ok {
			return Answer{}, false
		}
		lines := []string{fmt.Sprintf("%s performs best here.", best)}
		for _, ex := range ctx.Executed {
			if ex.Err == nil && ex.Result.Kind == queryir.KindScalar {
				lines = append(lines, fmt.Sprintf("  %s: %.2f%%", ex.Query.Policy, ex.Result.Scalar))
			}
		}
		return Answer{Text: strings.Join(lines, "\n"), Verdict: best}, true

	case nlu.IntentWorkloadAnalysis:
		type wl struct {
			name string
			rate float64
		}
		var rates []wl
		for _, ex := range ctx.Executed {
			if ex.Err == nil && ex.Result.Kind == queryir.KindScalar {
				rates = append(rates, wl{ex.Query.Workload, ex.Result.Scalar})
			}
		}
		if len(rates) == 0 {
			return Answer{}, false
		}
		sort.Slice(rates, func(i, j int) bool {
			if rates[i].rate != rates[j].rate {
				return rates[i].rate > rates[j].rate
			}
			return rates[i].name < rates[j].name
		})
		var b strings.Builder
		fmt.Fprintf(&b, "%s has the highest miss rate (%.2f%%).", rates[0].name, rates[0].rate)
		for _, r := range rates {
			fmt.Fprintf(&b, "\n  %s: %.2f%% miss rate", r.name, r.rate)
		}
		return Answer{Text: b.String(), Verdict: rates[0].name, Value: rates[0].rate, HasValue: true}, true

	case nlu.IntentListPCs, nlu.IntentListSets:
		for _, ex := range ctx.Executed {
			if ex.Err == nil && ex.Result.Kind == queryir.KindKeys {
				labels := make([]string, 0, len(ex.Result.Keys))
				for _, k := range ex.Result.Keys {
					if ctx.Parsed.Intent == nlu.IntentListPCs {
						labels = append(labels, queryir.PCRef(k))
					} else {
						labels = append(labels, fmt.Sprintf("%d", k))
					}
				}
				return Answer{
					Text:    strings.Join(labels, ", "),
					Verdict: fmt.Sprintf("%d", len(labels)),
					Value:   float64(len(labels)), HasValue: true,
				}, true
			}
		}
		return Answer{}, false

	case nlu.IntentTopMissPC, nlu.IntentPerPCStat, nlu.IntentSetStats, nlu.IntentBypass:
		for _, ex := range ctx.Executed {
			if ex.Err == nil && ex.Result.Kind == queryir.KindGroups && len(ex.Result.Groups) > 0 {
				var b strings.Builder
				top := ex.Result.Groups[0]
				label := queryir.PCRef(top.Key)
				if ex.Query.GroupBy == "set" {
					label = fmt.Sprintf("set %d", top.Key)
				}
				fmt.Fprintf(&b, "Top: %s with %s %.2f.", label, ex.Query.Agg, top.Value)
				for i, gRow := range ex.Result.Groups {
					if i >= 10 {
						break
					}
					key := queryir.PCRef(gRow.Key)
					if ex.Query.GroupBy == "set" {
						key = fmt.Sprintf("set %d", gRow.Key)
					}
					fmt.Fprintf(&b, "\n  %s: %.2f (n=%d)", key, gRow.Value, gRow.Count)
				}
				return Answer{Text: b.String(), Verdict: label, Value: top.Value, HasValue: true}, true
			}
		}
		return Answer{}, false

	case nlu.IntentConcept, nlu.IntentCodeGen, nlu.IntentPolicyAnalysis, nlu.IntentSemanticAnalysis:
		// Analysis-tier answers are synthesized by the analysis
		// renderer; grounding just requires usable context.
		if ctx.Quality == llm.QualityLow {
			return Answer{}, false
		}
		return Answer{Text: ctx.Text, Verdict: "analysis"}, true
	}
	return Answer{}, false
}

func describeSubject(q queryir.Query) string {
	parts := ""
	if q.PC != nil {
		parts += " for PC " + queryir.PCRef(*q.PC)
	}
	parts += fmt.Sprintf(" in %s under %s", q.Workload, q.Policy)
	return parts
}

func argbestPolicy(ctx retriever.Context, higherBetter bool) (string, bool) {
	best, bestVal, found := "", 0.0, false
	for _, ex := range ctx.Executed {
		if ex.Err != nil || ex.Result.Kind != queryir.KindScalar {
			continue
		}
		v := ex.Result.Scalar
		if ex.Query.Agg == queryir.AggMissRate && higherBetter {
			v = 100 - v // compare on hit rate
		}
		better := v < bestVal
		if higherBetter || ex.Query.Agg == queryir.AggHitRate {
			better = v > bestVal
		}
		if !found || better {
			best, bestVal, found = ex.Query.Policy, v, true
		}
	}
	return best, found
}
