package generator

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"cachemind/internal/llm"
	"cachemind/internal/memory"
	"cachemind/internal/nlu"
	"cachemind/internal/retriever"
	"cachemind/internal/testfix"
)

// Integration: the paper's Figure 12 session — list PCs, find the top
// miss PC, get its miss rate — run as a real multi-turn conversation
// with memory.
func TestDominantMissPCSession(t *testing.T) {
	g := New(perfect())
	g.Memory = memory.New(6)
	r := retriever.NewRanger(testfix.Store())

	ask := func(id, q string) Answer {
		ctx := r.Retrieve(context.Background(), q)
		ans, err := g.Answer(context.Background(), id, ctx.Parsed.Intent.String(), q, ctx)
		if err != nil {
			t.Fatal(err)
		}
		return ans
	}

	a1 := ask("s1", "List all unique PCs in the mcf trace under LRU.")
	if !strings.Contains(a1.Text, "0x4037aa") {
		t.Fatalf("PC listing missing arc-scan PC: %q", a1.Text)
	}

	a2 := ask("s2", "From the unique PCs, identify the PC causing the most cache misses in mcf under LRU.")
	f, _ := testfix.Store().Frame("mcf", "lru")
	wantPC, wantMisses := uint64(0), 0
	for _, st := range f.AllPCStats() {
		if st.Misses > wantMisses {
			wantPC, wantMisses = st.PC, st.Misses
		}
	}
	if !strings.Contains(a2.Verdict, fmt.Sprintf("0x%x", wantPC)) {
		t.Fatalf("top-miss verdict = %q, want %#x", a2.Verdict, wantPC)
	}

	a3 := ask("s3", fmt.Sprintf("What is the miss rate of PC 0x%x in mcf under LRU?", wantPC))
	st, _ := f.StatsForPC(wantPC)
	if !a3.HasValue || a3.Value-st.MissRatePct > 0.01 || st.MissRatePct-a3.Value > 0.01 {
		t.Fatalf("miss rate answer %v, want %.2f", a3.Value, st.MissRatePct)
	}

	// Memory accumulated the session.
	if g.Memory.Len() != 3 {
		t.Errorf("memory recorded %d turns", g.Memory.Len())
	}
	block := g.Memory.ContextBlock("follow-up")
	if !strings.Contains(block, "User:") {
		t.Errorf("memory context block malformed: %q", block)
	}
}

// Integration: the Figure 13 set-hotness session.
func TestSetHotnessSession(t *testing.T) {
	g := New(perfect())
	g.Memory = memory.New(6)
	r := retriever.NewRanger(testfix.Store())

	ctx := r.Retrieve(context.Background(), "For astar workload and Belady replacement policy, could you list unique cache sets in ascending order?")
	if ctx.Parsed.Intent != nlu.IntentListSets {
		t.Fatalf("intent = %v", ctx.Parsed.Intent)
	}
	a, _ := g.Answer(context.Background(), "h1", ctx.Parsed.Intent.String(), ctx.Question, ctx)
	if !a.HasValue || a.Value == 0 {
		t.Fatalf("set listing empty: %+v", a)
	}

	ctx = r.Retrieve(context.Background(), "For astar under belady, identify 5 hot and 5 cold sets by hit rate.")
	a, _ = g.Answer(context.Background(), "h2", ctx.Parsed.Intent.String(), ctx.Question, ctx)
	if !strings.Contains(a.Text, "set ") {
		t.Fatalf("hotness answer lacks sets: %q", a.Text)
	}
}

// Code-generation answers embed the rendered retrieval program and its
// executed result.
func TestCodeGenAnswerEmbedsProgram(t *testing.T) {
	f, _ := testfix.Store().Frame("mcf", "lru")
	rec := f.Record(100)
	q := fmt.Sprintf("Write code to compute the number of cache hits for PC 0x%x and address 0x%x in mcf under LRU.",
		rec.PC, rec.Addr)
	r := retriever.NewRanger(testfix.Store())
	ctx := r.Retrieve(context.Background(), q)
	ans, _ := New(perfect()).AnalysisAnswer(context.Background(), "cg1", "code_generation", q, ctx)
	for _, want := range []string{"loaded_data[", "result =", "Executed result:"} {
		if !strings.Contains(ans.Text, want) {
			t.Errorf("codegen answer missing %q:\n%s", want, ans.Text)
		}
	}
}

// One-shot prompting must improve trick-question rejection for a weak
// backend while leaving strong categories alone — the §6.1 finding.
func TestShotsEffectOnTrick(t *testing.T) {
	p, _ := llm.ByID("o3") // weak trick baseline (20%)
	base := p.SuccessProbShots("trick_question", llm.QualityHigh, 0)
	one := p.SuccessProbShots("trick_question", llm.QualityHigh, 1)
	three := p.SuccessProbShots("trick_question", llm.QualityHigh, 3)
	if !(base < one && one < three) {
		t.Errorf("trick prob should rise with shots: %v %v %v", base, one, three)
	}
	// Low-quality contexts get worse (the model adopts the example's
	// context as its own).
	lowBase := p.SuccessProbShots("hit_miss", llm.QualityLow, 0)
	lowThree := p.SuccessProbShots("hit_miss", llm.QualityLow, 3)
	if lowThree >= lowBase {
		t.Errorf("low-quality prob should fall with shots: %v -> %v", lowBase, lowThree)
	}
	// High-quality non-trick categories are untouched.
	if p.SuccessProbShots("hit_miss", llm.QualityHigh, 3) != p.SuccessProb("hit_miss", llm.QualityHigh) {
		t.Error("shots should not change high-quality non-trick competence")
	}
}

// Median arithmetic flows end to end through parse, execution and
// generation.
func TestMedianEndToEnd(t *testing.T) {
	q := "What is the median reuse distance for PC 0x4037ba in mcf under LRU?"
	r := retriever.NewRanger(testfix.Store())
	ctx := r.Retrieve(context.Background(), q)
	if ctx.Quality != llm.QualityHigh {
		t.Fatalf("quality = %v, err = %v", ctx.Quality, ctx.Err)
	}
	ans, _ := New(perfect()).Answer(context.Background(), "med1", "arithmetic", q, ctx)
	if !ans.HasValue {
		t.Fatalf("no numeric answer: %+v", ans)
	}
	if !strings.Contains(ctx.Text, "median") {
		t.Errorf("context missing median aggregation:\n%s", ctx.Text)
	}
}
