package experiments

import (
	"context"
	"fmt"
	"strings"

	"cachemind/internal/bench"
	"cachemind/internal/llm"
	"cachemind/internal/policy"
	"cachemind/internal/queryir"
	"cachemind/internal/replay"
	"cachemind/internal/retriever"
	"cachemind/internal/sim"
	"cachemind/internal/trace"
	"cachemind/internal/workload"
)

// PolicyTableResult is the extended cross-policy comparison: LLC replay
// hit rates for every registered policy on every workload — the
// design-space sweep the paper's related-work section frames (heuristic
// vs oracle vs learned families).
type PolicyTableResult struct {
	Workloads []string
	Policies  []string
	// HitRatePct[workload][policy]
	HitRatePct map[string]map[string]float64
}

// PolicyTable replays every workload under every policy at the lab's
// database geometry.
func PolicyTable(lab *Lab, accesses int, policies []string) PolicyTableResult {
	if len(policies) == 0 {
		policies = policy.Names()
	}
	res := PolicyTableResult{Policies: policies, HitRatePct: map[string]map[string]float64{}}
	for _, wName := range []string{"astar", "lbm", "mcf", "milc"} {
		w, _ := workload.ByName(wName)
		res.Workloads = append(res.Workloads, wName)
		accs := w.Generate(accesses, lab.Seed+500)
		train := w.Generate(accesses/2, lab.Seed+501)
		oracle := trace.NextUseOracle(accs)
		row := map[string]float64{}
		for _, pName := range policies {
			p, err := policy.New(pName, lab.LLC, policy.Options{
				Seed: lab.Seed, Oracle: oracle, Train: train,
			})
			if err != nil {
				continue
			}
			r := replay.Run(accs, lab.LLC, p, replay.Options{SnapshotEvery: 1 << 30})
			row[pName] = 100 * r.Summary.HitRate()
		}
		res.HitRatePct[wName] = row
	}
	return res
}

// String renders the policy x workload hit-rate matrix.
func (r PolicyTableResult) String() string {
	var b strings.Builder
	b.WriteString("Extension: LLC hit rate (%) per workload x policy\n")
	fmt.Fprintf(&b, "%-12s", "Policy")
	for _, w := range r.Workloads {
		fmt.Fprintf(&b, " %8s", w)
	}
	b.WriteString("\n")
	for _, p := range r.Policies {
		fmt.Fprintf(&b, "%-12s", p)
		for _, w := range r.Workloads {
			fmt.Fprintf(&b, " %8.2f", r.HitRatePct[w][p])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PrefetchInteractionResult is the policy-prefetcher interaction
// ablation: IPC and LLC hit rate per (prefetcher, policy) pair on a
// strided workload — the cross-effect the paper cites as beyond manual
// reasoning.
type PrefetchInteractionResult struct {
	Workload    string
	Prefetchers []string
	Policies    []string
	// IPC[prefetcher][policy] and HitRate[prefetcher][policy].
	IPC     map[string]map[string]float64
	HitRate map[string]map[string]float64
}

// PrefetchInteraction sweeps prefetchers against LLC policies on milc.
func PrefetchInteraction(lab *Lab, accesses int) PrefetchInteractionResult {
	cfg := sim.DefaultMachineConfig()
	policies := []string{"lru", "ship", "mockingjay"}
	prefetchers := []string{"none", "nextline", "stride"}
	res := PrefetchInteractionResult{
		Workload: "milc", Prefetchers: prefetchers, Policies: policies,
		IPC: map[string]map[string]float64{}, HitRate: map[string]map[string]float64{},
	}
	for _, pf := range prefetchers {
		res.IPC[pf] = map[string]float64{}
		res.HitRate[pf] = map[string]float64{}
		for _, pol := range policies {
			m := sim.NewMachine(cfg,
				policy.MustNew("lru", cfg.L1D, policy.Options{}),
				policy.MustNew("lru", cfg.L2, policy.Options{}),
				policy.MustNew(pol, cfg.LLC, policy.Options{Seed: lab.Seed}))
			switch pf {
			case "nextline":
				m.AttachPrefetcher(&sim.NextLinePrefetcher{Degree: 2})
			case "stride":
				m.AttachPrefetcher(sim.NewStridePrefetcher(4))
			}
			r := m.Run(workload.MILC.Generate(accesses, lab.Seed+600))
			res.IPC[pf][pol] = r.IPC()
			res.HitRate[pf][pol] = 100 * m.LLC.HitRate()
		}
	}
	return res
}

// String renders the interaction matrix.
func (r PrefetchInteractionResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: prefetcher x replacement-policy interaction on %s (IPC, LLC hit %%)\n", r.Workload)
	fmt.Fprintf(&b, "%-10s", "")
	for _, p := range r.Policies {
		fmt.Fprintf(&b, " %20s", p)
	}
	b.WriteString("\n")
	for _, pf := range r.Prefetchers {
		fmt.Fprintf(&b, "%-10s", pf)
		for _, p := range r.Policies {
			fmt.Fprintf(&b, "    %7.4f (%6.2f%%)", r.IPC[pf][p], r.HitRate[pf][p])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ShotsStudyResult is the one/few-shot prompting ablation (paper §6.1):
// weighted totals and trick-question accuracy at zero, one and three
// in-context examples.
type ShotsStudyResult struct {
	Model string
	// Per shot count (0, 1, 3).
	Shots    []int
	Total    map[int]float64
	TrickPct map[int]float64
	LowPct   map[int]float64 // accuracy on Low-quality-context questions
}

// MakeShots builds k in-context examples from real store events, in the
// format of the paper's Figure 6 one-shot prompt.
func MakeShots(lab *Lab, k int) []llm.Example {
	var shots []llm.Example
	frame, _ := lab.Store.Frame("lbm", "lru")
	for i := 0; i < k && i < frame.Len(); i++ {
		rec := frame.Record((i + 1) * frame.Len() / (k + 1))
		outcome := "Cache Miss"
		if rec.Hit {
			outcome = "Cache Hit"
		}
		shots = append(shots, llm.Example{
			Context: fmt.Sprintf("For policy LRU on workload lbm at PC %s and address 0x%x: Cache result: %s",
				queryir.PCRef(rec.PC), rec.Addr, outcome),
			Question: fmt.Sprintf("Does the memory access with PC %s and address 0x%x result in a cache hit or cache miss for the lbm workload and LRU replacement policy?",
				queryir.PCRef(rec.PC), rec.Addr),
			Answer: outcome,
		})
	}
	return shots
}

// ShotsStudy evaluates the suite at 0/1/3 shots with one backend.
func ShotsStudy(lab *Lab, modelID string) ShotsStudyResult {
	profile, ok := llm.ByID(modelID)
	if !ok {
		panic("experiments: unknown model " + modelID)
	}
	res := ShotsStudyResult{
		Model: modelID, Shots: []int{0, 1, 3},
		Total: map[int]float64{}, TrickPct: map[int]float64{}, LowPct: map[int]float64{},
	}
	for _, k := range res.Shots {
		pipe := lab.DefaultPipeline(profile)
		pipe.Shots = MakeShots(lab, k)
		rep := bench.Evaluate(lab.Suite, pipe)
		res.Total[k] = rep.WeightedTotalPct()
		res.TrickPct[k] = rep.PerCat[bench.CatTrick].Pct()
		lowCorrect, lowN := 0.0, 0
		for _, qr := range rep.Results {
			if qr.Quality == llm.QualityLow {
				lowN++
				lowCorrect += qr.Points()
			}
		}
		if lowN > 0 {
			res.LowPct[k] = 100 * lowCorrect / float64(lowN)
		}
	}
	return res
}

// String renders the shots ablation.
func (r ShotsStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: one/few-shot prompting ablation (%s)\n", r.Model)
	fmt.Fprintf(&b, "%-8s %14s %14s %18s\n", "Shots", "Weighted total", "Trick accuracy", "Low-context score")
	for _, k := range r.Shots {
		fmt.Fprintf(&b, "%-8d %13.1f%% %13.1f%% %17.1f%%\n", k, r.Total[k], r.TrickPct[k], r.LowPct[k])
	}
	return b.String()
}

// SieveSemanticAblationResult measures Sieve with and without its
// semantic (embedding) workload-resolution stage — the design-choice
// ablation called out for the Sieve pipeline.
type SieveSemanticAblationResult struct {
	// ResolvedWith / ResolvedWithout count probe questions whose
	// workload was resolved by the full pipeline vs token matching
	// alone.
	ResolvedWith    int
	ResolvedWithout int
	Total           int
}

// SieveSemanticAblation probes workload resolution on paraphrased
// questions that avoid the literal workload token.
func SieveSemanticAblation(lab *Lab) SieveSemanticAblationResult {
	paraphrases := []string{
		"In the lattice Boltzmann fluid dynamics benchmark under LRU, what is the miss rate for PC 0x401dc9?",
		"For the network simplex vehicle scheduling benchmark with PARROT, what is the miss rate for PC 0x4037ba?",
		"On the grid path-finding benchmark under Belady, what is the miss rate for PC 0x409270?",
		"In the fluid solver trace under MLP, what is the miss rate for PC 0x401e31?",
	}
	s := retriever.NewSieve(lab.Store)
	res := SieveSemanticAblationResult{Total: len(paraphrases)}
	for _, q := range paraphrases {
		rctx := s.Retrieve(context.Background(), q)
		if len(rctx.Executed) > 0 && rctx.Err == nil {
			res.ResolvedWith++
		}
		// Without the semantic stage, only literal token matches
		// resolve; none of these mention a workload name.
		if len(rctx.Parsed.Entities.Workloads) > 0 {
			res.ResolvedWithout++
		}
	}
	return res
}

// String renders the ablation.
func (r SieveSemanticAblationResult) String() string {
	return fmt.Sprintf("Extension: Sieve semantic-stage ablation — workload resolved on %d/%d paraphrased queries with the embedding stage, %d/%d with token matching alone\n",
		r.ResolvedWith, r.Total, r.ResolvedWithout, r.Total)
}
