package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// HopHeader marks a forwarded request. A node receiving it always
// serves locally — never re-forwards — so a stale or disagreeing ring
// can cost at most one extra hop, not a loop.
const HopHeader = "X-Cachemind-Forwarded"

// ErrPeerDown is returned by Post when the peer's circuit breaker
// refuses the request (open, or half-open with a probe already in
// flight). Callers fall back to serving locally.
var ErrPeerDown = errors.New("cluster: peer circuit open")

// maxForwardResponse bounds how much of a peer's response body Post
// will read — far above any real ask envelope, small enough that a
// confused peer cannot balloon the router's memory.
const maxForwardResponse = 8 << 20

// ForwarderConfig parameterizes a Forwarder. The zero value is usable:
// pooled default transport, 2 retries at 25ms doubling backoff, and
// the package-default breaker settings.
type ForwarderConfig struct {
	// Retries is how many times a transport-failed attempt is retried
	// (0 selects 2; negative disables retrying).
	Retries int
	// Backoff is the sleep before the first retry, doubling per
	// subsequent retry (0 selects 25ms).
	Backoff time.Duration
	// BreakerThreshold / BreakerCooldown parameterize the per-peer
	// breakers (0 selects the package defaults).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Transport overrides the HTTP transport (tests). Nil selects a
	// pooled transport tuned for a small peer set.
	Transport http.RoundTripper
}

// Forwarder relays requests to peer nodes: one pooled HTTP client for
// all peers, a lazily-created circuit Breaker per peer, and
// retry-with-backoff on transport errors. Safe for concurrent use.
//
// Only transport errors count as peer failures. An HTTP error status
// is a live peer making a decision — it is returned to the caller
// as-is, trips nothing, and is never retried (the v1 envelope's
// errors are deterministic; retrying them cannot change the answer).
type Forwarder struct {
	client  *http.Client
	retries int
	backoff time.Duration
	brTh    int
	brCd    time.Duration

	mu       sync.Mutex
	breakers map[string]*Breaker
}

// NewForwarder builds a forwarder from cfg.
func NewForwarder(cfg ForwarderConfig) *Forwarder {
	retries := cfg.Retries
	if retries == 0 {
		retries = 2
	}
	if retries < 0 {
		retries = 0
	}
	backoff := cfg.Backoff
	if backoff == 0 {
		backoff = 25 * time.Millisecond
	}
	rt := cfg.Transport
	if rt == nil {
		rt = &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	return &Forwarder{
		client:   &http.Client{Transport: rt},
		retries:  retries,
		backoff:  backoff,
		brTh:     cfg.BreakerThreshold,
		brCd:     cfg.BreakerCooldown,
		breakers: map[string]*Breaker{},
	}
}

// breaker returns peer's circuit breaker, creating it on first use.
func (f *Forwarder) breaker(peer string) *Breaker {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.breakers[peer]
	if !ok {
		b = NewBreaker(f.brTh, f.brCd)
		f.breakers[peer] = b
	}
	return b
}

// BreakerState returns peer's breaker state (BreakerClosed for a peer
// never contacted) — the /metrics source.
func (f *Forwarder) BreakerState(peer string) string {
	f.mu.Lock()
	b := f.breakers[peer]
	f.mu.Unlock()
	if b == nil {
		return BreakerClosed
	}
	return b.State()
}

// Post sends body to http://peer+path with the hop-guard header set,
// returning the peer's status and (bounded) response body. Transport
// errors are retried with doubling backoff up to the configured retry
// budget, each attempt re-admitted by the peer's breaker; exhausted
// retries return the last transport error. attempts reports how many
// requests actually hit the wire (0 when the breaker refused
// outright).
func (f *Forwarder) Post(ctx context.Context, peer, path, contentType string, body []byte) (status int, respBody []byte, attempts int, err error) {
	return f.do(ctx, http.MethodPost, peer, path, contentType, body)
}

// Get relays a GET to http://peer+path with the hop-guard header set —
// same breaker, retry, and bounding semantics as Post.
func (f *Forwarder) Get(ctx context.Context, peer, path string) (status int, respBody []byte, attempts int, err error) {
	return f.do(ctx, http.MethodGet, peer, path, "", nil)
}

func (f *Forwarder) do(ctx context.Context, method, peer, path, contentType string, body []byte) (status int, respBody []byte, attempts int, err error) {
	br := f.breaker(peer)
	var lastErr error
	for try := 0; try <= f.retries; try++ {
		if try > 0 {
			// Doubling backoff, abandoned early if the caller's context
			// dies while we wait.
			d := f.backoff << (try - 1)
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return 0, nil, attempts, ctx.Err()
			case <-t.C:
			}
		}
		if !br.Allow() {
			if lastErr != nil {
				return 0, nil, attempts, fmt.Errorf("%w (last error: %v)", ErrPeerDown, lastErr)
			}
			return 0, nil, attempts, ErrPeerDown
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, rerr := http.NewRequestWithContext(ctx, method, "http://"+peer+path, rd)
		if rerr != nil {
			br.Record(true) // not the peer's fault
			return 0, nil, attempts, rerr
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		req.Header.Set(HopHeader, "1")
		attempts++
		resp, derr := f.client.Do(req)
		if derr != nil {
			br.Record(false)
			lastErr = derr
			// The caller's context dying is not a peer failure worth
			// retrying against.
			if ctx.Err() != nil {
				return 0, nil, attempts, ctx.Err()
			}
			continue
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxForwardResponse))
		resp.Body.Close()
		if rerr != nil {
			br.Record(false)
			lastErr = rerr
			continue
		}
		br.Record(true)
		return resp.StatusCode, data, attempts, nil
	}
	return 0, nil, attempts, lastErr
}
