// Quickstart: build a small trace database, retrieve trace-grounded
// context for a few representative questions with both retrievers, and
// generate answers — the minimal end-to-end tour of the CacheMind
// pipeline (database -> retriever -> generator).
package main

import (
	"context"
	"fmt"
	"log"

	"cachemind/internal/db"
	"cachemind/internal/generator"
	"cachemind/internal/llm"
	"cachemind/internal/queryir"
	"cachemind/internal/retriever"
	"cachemind/internal/sim"
)

func main() {
	log.SetFlags(0)

	// 1. Build the external database: 3 workloads x 4 policies of
	// eviction-annotated traces. (cmd/tracegen does this at scale.)
	store, err := db.Build(db.BuildConfig{
		AccessesPerTrace: 30000,
		Seed:             42,
		LLC:              sim.Config{Name: "LLC", Sets: 256, Ways: 8, Latency: 26, MSHRs: 64},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("database keys:")
	for _, k := range store.Keys() {
		fmt.Println("  " + k)
	}

	// 2. Pick a real event to ask about.
	frame, _ := store.Frame("mcf", "parrot")
	rec := frame.Record(frame.Len() / 2)
	question := fmt.Sprintf(
		"Does the memory access with PC %s and address 0x%x result in a cache hit or cache miss for the mcf workload and PARROT replacement policy?",
		queryir.PCRef(rec.PC), rec.Addr)
	fmt.Println("\nquestion:", question)

	// 3. Retrieve with both retrievers and compare their context.
	sieve := retriever.NewSieve(store)
	ranger := retriever.NewRanger(store)
	for _, r := range []retriever.Retriever{sieve, ranger} {
		rctx := r.Retrieve(context.Background(), question)
		fmt.Printf("\n[%s] quality=%s elapsed=%s\n%s\n",
			r.Name(), rctx.Quality, rctx.Elapsed.Round(1000), rctx.Text)
	}

	// 4. Generate a grounded answer with the GPT-4o behavioural profile.
	profile, _ := llm.ByID("gpt-4o")
	gen := generator.New(profile)
	rctx := ranger.Retrieve(context.Background(), question)
	ans, _ := gen.Answer(context.Background(), "quickstart-1", "hit_miss", question, rctx)
	fmt.Println("\nanswer:", ans.Text)

	// 5. A trick question: the premise is invalid (that PC lives in
	// mcf, not lbm) and CacheMind rejects it with evidence.
	trick := fmt.Sprintf("Does PC %s in lbm access address 0x%x under LRU? Answer hit or miss.",
		queryir.PCRef(rec.PC), rec.Addr)
	fmt.Println("\ntrick question:", trick)
	ans, _ = gen.Answer(context.Background(), "quickstart-2", "trick_question", trick,
		ranger.Retrieve(context.Background(), trick))
	fmt.Println("answer:", ans.Text)

	// 6. A Figure-2-style trace excerpt: one access with its resident
	// lines, history, eviction scores and disassembly context.
	if row := frame.FirstSnapshotRow(frame.Len() / 2); row >= 0 {
		fmt.Println("\ntrace excerpt (paper Figure 2):")
		fmt.Println(frame.RenderExcerpt(row))
	}

	// 7. The Ranger system prompt (paper Figure 3) for inspection.
	fmt.Println("\nRanger system prompt:")
	fmt.Println(ranger.SystemPrompt())
}
