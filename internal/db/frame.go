// Package db implements CacheMind's external database (paper §4.3): a
// store of eviction-annotated trace frames keyed
// "<workload>_evictions_<policy>", each holding per-access records with
// the paper's 20-column schema, a whole-trace metadata string in the
// paper's exact format, and a human-readable description. Frames carry
// symbolic indexes (per PC, per PC+address, per set) that the Sieve
// retriever's filtering stages and the Ranger query executor use.
package db

import (
	"fmt"
	"sort"

	"cachemind/internal/stats"
	"cachemind/internal/symbols"
	"cachemind/internal/trace"
)

// Column names of the frame schema, mirroring the paper's DataFrame
// columns.
const (
	ColPC              = "program_counter"
	ColAddr            = "memory_address"
	ColSet             = "cache_set_id"
	ColEvict           = "evict" // "Cache Hit" / "Cache Miss"
	ColMissType        = "miss_type"
	ColEvictedAddr     = "evicted_address"
	ColRecency         = "accessed_address_recency"
	ColAccessReuse     = "accessed_address_reuse_distance"
	ColEvictedReuse    = "evicted_address_reuse_distance"
	ColFunctionName    = "function_name"
	ColFunctionCode    = "function_code"
	ColAssembly        = "assembly_code"
	ColResidentLines   = "current_cache_lines"
	ColRecentHistory   = "recent_access_history"
	ColEvictionScores  = "cache_line_eviction_scores"
	ColResidentAddrs   = "current_cache_line_addresses"
	ColEvictedReuseNum = "evicted_address_reuse_distance_numeric"
	ColAccessReuseNum  = "accessed_address_reuse_distance_numeric"
	ColRecencyNum      = "accessed_address_recency_numeric"
	ColIsMiss          = "is_miss"
)

// Columns lists every column in schema order.
func Columns() []string {
	return []string{
		ColPC, ColAddr, ColSet, ColEvict, ColMissType, ColEvictedAddr,
		ColRecency, ColAccessReuse, ColEvictedReuse, ColFunctionName,
		ColFunctionCode, ColAssembly, ColResidentLines, ColRecentHistory,
		ColEvictionScores, ColResidentAddrs, ColEvictedReuseNum,
		ColAccessReuseNum, ColRecencyNum, ColIsMiss,
	}
}

// Frame is one (workload, policy) eviction-annotated trace plus indexes.
type Frame struct {
	Workload string
	Policy   string

	records []trace.Record
	syms    *symbols.Table

	// Metadata is the whole-trace summary string in the paper's format.
	Metadata string
	// Description summarizes the workload and policy in prose.
	Description string

	// Summary holds the structured totals behind Metadata.
	Summary FrameSummary

	byPC     map[uint64][]int32
	byPCAddr map[pcAddr][]int32
	bySet    map[int][]int32
	pcs      []uint64 // distinct PCs, sorted
	sets     []int    // distinct sets, sorted
}

type pcAddr struct {
	pc   uint64
	addr uint64
}

// FrameSummary mirrors replay.Summary without importing it (db consumes
// plain values so the build pipeline owns the dependency direction).
type FrameSummary struct {
	Accesses        int
	Hits            int
	Misses          int
	Evictions       int
	ColdMisses      int
	CapacityMisses  int
	ConflictMisses  int
	WrongEvictions  int
	RecencyMissCorr float64
}

// Key returns the store key "<workload>_evictions_<policy>".
func (f *Frame) Key() string { return Key(f.Workload, f.Policy) }

// Key builds a store key from workload and policy names.
func Key(workload, policy string) string {
	return workload + "_evictions_" + policy
}

// NewFrame indexes records into a frame. The caller supplies the symbol
// table so PC-level metadata columns resolve.
func NewFrame(workloadName, policyName string, records []trace.Record, syms *symbols.Table, sum FrameSummary, description string) *Frame {
	f := &Frame{
		Workload:    workloadName,
		Policy:      policyName,
		records:     records,
		syms:        syms,
		Summary:     sum,
		Description: description,
		byPC:        map[uint64][]int32{},
		byPCAddr:    map[pcAddr][]int32{},
		bySet:       map[int][]int32{},
	}
	for i, r := range records {
		f.byPC[r.PC] = append(f.byPC[r.PC], int32(i))
		f.byPCAddr[pcAddr{r.PC, r.Addr}] = append(f.byPCAddr[pcAddr{r.PC, r.Addr}], int32(i))
		f.bySet[r.Set] = append(f.bySet[r.Set], int32(i))
	}
	for pc := range f.byPC {
		f.pcs = append(f.pcs, pc)
	}
	sort.Slice(f.pcs, func(i, j int) bool { return f.pcs[i] < f.pcs[j] })
	for s := range f.bySet {
		f.sets = append(f.sets, s)
	}
	sort.Ints(f.sets)
	f.Metadata = formatMetadata(sum)
	return f
}

// formatMetadata renders the paper's metadata string format.
func formatMetadata(s FrameSummary) string {
	return fmt.Sprintf(
		"Cache Performance Summary: %d total accesses, %d total misses, %s miss rate, "+
			"%s capacity misses, %s conflict misses, %d total evictions, "+
			"%d (%s) wrong evictions where evicted line has lower reuse distance. "+
			"The correlation between accessed address recency and cache misses is %.2f.",
		s.Accesses, s.Misses, stats.Ratio(s.Misses, s.Accesses),
		stats.Ratio(s.CapacityMisses, s.Misses), stats.Ratio(s.ConflictMisses, s.Misses),
		s.Evictions, s.WrongEvictions, stats.Ratio(s.WrongEvictions, s.Evictions),
		s.RecencyMissCorr)
}

// Len returns the number of records.
func (f *Frame) Len() int { return len(f.records) }

// Record returns record i.
func (f *Frame) Record(i int) trace.Record { return f.records[i] }

// PCs returns all distinct PCs in ascending order.
func (f *Frame) PCs() []uint64 { return append([]uint64(nil), f.pcs...) }

// Sets returns all distinct cache sets touched, ascending.
func (f *Frame) Sets() []int { return append([]int(nil), f.sets...) }

// RowsForPC returns the record indices for pc (shared slice; do not
// modify).
func (f *Frame) RowsForPC(pc uint64) []int32 { return f.byPC[pc] }

// RowsForPCAddr returns record indices matching both pc and the
// line-aligned address.
func (f *Frame) RowsForPCAddr(pc, addr uint64) []int32 {
	return f.byPCAddr[pcAddr{pc, addr &^ uint64(trace.LineSize-1)}]
}

// RowsForSet returns record indices for one cache set.
func (f *Frame) RowsForSet(set int) []int32 { return f.bySet[set] }

// HasPC reports whether pc appears anywhere in the frame.
func (f *Frame) HasPC(pc uint64) bool { return len(f.byPC[pc]) > 0 }

// Symbols returns the workload's symbol table.
func (f *Frame) Symbols() *symbols.Table { return f.syms }

// Value returns the value of the named column at row i, typed per the
// schema: uint64 for PCs/addresses, int for sets, string for labels,
// int64 for numeric distances, float64 slices for scores, bool-as-int
// for is_miss. Unknown columns return an error.
func (f *Frame) Value(col string, i int) (any, error) {
	r := f.records[i]
	switch col {
	case ColPC:
		return r.PC, nil
	case ColAddr:
		return r.Addr, nil
	case ColSet:
		return r.Set, nil
	case ColEvict:
		if r.Hit {
			return "Cache Hit", nil
		}
		return "Cache Miss", nil
	case ColMissType:
		return r.MissType.String(), nil
	case ColEvictedAddr:
		return r.EvictedAddr, nil
	case ColRecency:
		return trace.RecencyLabel(r.Recency), nil
	case ColAccessReuse, ColAccessReuseNum:
		return r.AccessedReuseDist, nil
	case ColEvictedReuse, ColEvictedReuseNum:
		return r.EvictedReuseDist, nil
	case ColRecencyNum:
		return r.Recency, nil
	case ColFunctionName:
		return f.syms.NameAt(r.PC), nil
	case ColFunctionCode:
		return f.syms.SourceAt(r.PC), nil
	case ColAssembly:
		return f.syms.Assembly(r.PC), nil
	case ColResidentLines:
		return r.ResidentLines, nil
	case ColRecentHistory:
		return r.RecentHistory, nil
	case ColEvictionScores:
		return r.EvictionScores, nil
	case ColResidentAddrs:
		addrs := make([]uint64, len(r.ResidentLines))
		for j, l := range r.ResidentLines {
			addrs[j] = l.Addr
		}
		return addrs, nil
	case ColIsMiss:
		if r.Hit {
			return 0, nil
		}
		return 1, nil
	default:
		return nil, fmt.Errorf("db: unknown column %q", col)
	}
}

// NumericValue returns the named column at row i as a float64, for
// aggregation. Only numeric columns qualify; NoReuse sentinel values
// report ok=false so aggregations can skip them.
func (f *Frame) NumericValue(col string, i int) (v float64, ok bool) {
	r := f.records[i]
	switch col {
	case ColAccessReuse, ColAccessReuseNum:
		if r.AccessedReuseDist == trace.NoReuse {
			return 0, false
		}
		return float64(r.AccessedReuseDist), true
	case ColEvictedReuse, ColEvictedReuseNum:
		if r.EvictedReuseDist == trace.NoReuse {
			return 0, false
		}
		return float64(r.EvictedReuseDist), true
	case ColRecency, ColRecencyNum:
		if r.Recency < 0 {
			return 0, false
		}
		return float64(r.Recency), true
	case ColIsMiss:
		if r.Hit {
			return 0, true
		}
		return 1, true
	case ColSet:
		return float64(r.Set), true
	default:
		return 0, false
	}
}
