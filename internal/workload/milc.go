package workload

import (
	"math/rand"

	"cachemind/internal/symbols"
	"cachemind/internal/trace"
)

// milc program counters, matching the PC families in the paper's
// Mockingjay chat transcript (0x4184b0..., 0x41393x, 0x417f58).
const (
	milcPCSu3Load   = 0x4184b0 // mult_su3_na: link matrix load (strided, stable)
	milcPCSu3Load2  = 0x4184c0 // mult_su3_na: second operand load (stable)
	milcPCSu3Store  = 0x418502 // mult_su3_na: result store (stable)
	milcPCGather    = 0x413930 // dslash: neighbour gather, +mu direction
	milcPCGather2   = 0x41391c // dslash: neighbour gather, -mu direction
	milcPCScatter   = 0x413948 // dslash: irregular boundary scatter (noisy)
	milcPCMomUpdate = 0x417f58 // update_h: momentum update sweep
	milcAddrBase    = 0x51a20000000
	milcLatLines    = 36_000 // lattice field storage, slightly past LLC capacity
	milcMomLines    = 11_000 // momentum field
	milcEvenOdd     = 2      // even/odd checkerboard sublattices
)

// MILC models SPEC 2006 433.milc: lattice QCD with SU(3) matrix algebra
// over a 4-D lattice. Sweeps are strided and highly regular — most PCs
// have very predictable reuse distances (low variance), which is exactly
// why the paper's Mockingjay use case trains its reuse-distance
// predictor on milc's stable PCs — while the boundary scatter PC has
// noisy, high-variance reuse.
var MILC = register(&Workload{
	name: "milc",
	desc: "433.milc (SPEC CPU 2006): lattice QCD simulation with SU(3) " +
		"matrix-matrix products over a 4-D even/odd checkerboard " +
		"lattice. Memory behaviour: regular strided sweeps with highly " +
		"predictable per-PC reuse distances, plus an irregular boundary " +
		"scatter PC with high reuse-distance variance. Working set " +
		"moderately exceeds LLC capacity.",
	syms: symbols.NewTable([]symbols.Function{
		{
			Name:   "mult_su3_na",
			Source: "for (i = 0; i < 3; i++) for (j = 0; j < 3; j++) {\n    CMULJ_(a->e[i][0], b->e[j][0], x);\n    c->e[i][j] = x;\n}",
			LowPC:  0x418480, HighPC: 0x418540,
		},
		{
			Name:   "dslash_w_site",
			Source: "FORSOMEPARITY(i, s, parity) {\n    mult_adj_su3_mat_vec(&(s->link[dir]), &(s->tmp), &(s->dst));\n}",
			LowPC:  0x4138e0, HighPC: 0x413980,
		},
		{
			Name:   "update_h",
			Source: "FORALLSITES(i, s) {\n    scalar_mult_add_su3_matrix(&(s->mom[dir]), &force, eps, &(s->mom[dir]));\n}",
			LowPC:  0x417f20, HighPC: 0x417f80,
		},
	}),
	gen: genMILC,
})

func genMILC(n int, seed int64) []trace.Access {
	rng := rand.New(rand.NewSource(seed))
	accs := make([]trace.Access, 0, n)
	latBase := uint64(milcAddrBase)
	momBase := latBase + uint64(milcLatLines+4096)*trace.LineSize

	parity := 0
	for len(accs) < n {
		// One dslash sweep over one checkerboard parity: regular stride-2.
		for site := parity; site < milcLatLines && len(accs) < n; site += milcEvenOdd {
			line := latBase + uint64(site)*trace.LineSize
			accs = append(accs,
				trace.Access{PC: milcPCSu3Load, Addr: line, InstrGap: 11},
				trace.Access{PC: milcPCSu3Load2, Addr: line + 24, InstrGap: 8},
			)
			if len(accs) < n {
				accs = append(accs, trace.Access{
					PC: milcPCSu3Store, Addr: line + 48, Write: true, InstrGap: 6,
				})
			}
			// Neighbour gathers at fixed lattice strides: predictable.
			if len(accs) < n {
				up := latBase + uint64((site+32)%milcLatLines)*trace.LineSize
				accs = append(accs, trace.Access{PC: milcPCGather, Addr: up, InstrGap: 5})
			}
			if len(accs) < n {
				down := latBase + uint64((site+milcLatLines-32)%milcLatLines)*trace.LineSize
				accs = append(accs, trace.Access{PC: milcPCGather2, Addr: down, InstrGap: 5})
			}
			// Irregular boundary scatter: noisy reuse (high variance).
			if site%24 == 0 && len(accs) < n {
				tgt := latBase + uint64(rng.Intn(milcLatLines))*trace.LineSize
				accs = append(accs, trace.Access{
					PC: milcPCScatter, Addr: tgt, Write: true, InstrGap: 4,
				})
			}
		}
		parity = 1 - parity

		// Momentum update: dense regular sweep of the smaller field.
		if parity == 0 {
			for m := 0; m < milcMomLines && len(accs) < n; m++ {
				accs = append(accs, trace.Access{
					PC: milcPCMomUpdate, Addr: momBase + uint64(m)*trace.LineSize,
					Write: m%2 == 1, InstrGap: 7,
				})
			}
		}
	}
	return accs[:n]
}
