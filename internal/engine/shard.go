package engine

import (
	"container/list"
	"runtime"
	"sync"
)

// Sharding design note
//
// The engine's three mutable tables — the session map, the answer LRU,
// and the single-flight table — were protected by single global mutexes
// through PR 2, which serialized every ask no matter how many cores
// served traffic. They are now each split into Config.Shards hash-keyed
// shards with one lock per shard:
//
//   - a cache key (retriever\x00model\x00question) always hashes to the
//     same cache/flight shard, so whether a lookup hits, and which
//     single-flight leader a concurrent miss joins, is independent of
//     the shard count — hit/miss totals for any fixed ask sequence are
//     identical at 1 shard and at N;
//   - a session ID always hashes to the same session shard, so one
//     session's turns stay totally ordered under that shard's lock
//     exactly as before;
//   - Eviction and turn compaction run per shard over that shard's
//     slice of the global budget (shardCount + shardBudget), so the
//     semantics are the PR 2 semantics applied shard-locally. A budget
//     smaller than the configured shard count clamps that table's
//     effective shard count instead of rounding budgets up, so the
//     documented global bound is exact. The one observable difference:
//     recency competition is per shard, so which session (or cached
//     answer) is evicted under pressure depends on the hash layout.
//     Tests that pin exact global eviction order set Shards: 1.
//
// Answers themselves never touch shard state (they are pure functions
// of retriever, model, and question — see the package comment), so
// sharding cannot change a single byte of any answer.

// DefaultShards is the shard count when Config.Shards is zero: one
// shard per schedulable CPU, so lock contention scales out with the
// hardware the same way GOMAXPROCS does.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// shardIndex maps a key to a shard by FNV-1a (inlined to avoid a
// hash.Hash allocation on the ask hot path).
func shardIndex(key string, n int) int {
	return shardIndexHash(fnv32a(key), n)
}

// fnv32a is the FNV-1a hash of key, generic over the two spellings the
// ask path holds a key in (the pooled scratch bytes and the
// materialized string), so the hash is computed once per ask and reused
// for every shard selection — cache and flight — instead of rehashed
// per table.
//
//cachemind:noalloc
func fnv32a[T string | []byte](key T) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// shardIndexHash maps an fnv32a hash to a shard index.
//
//cachemind:noalloc
func shardIndexHash(h uint32, n int) int {
	return int(h % uint32(n))
}

// shardCount clamps the shard count for a table with a positive entry
// budget of total: a budget smaller than the requested shard count
// would leave shards with zero entries (or, as the pre-fix rounding
// did, silently overshoot the global bound by giving every shard one),
// so the table runs with total shards instead — each holding exactly
// one entry. Non-positive totals (unlimited / disabled) keep the
// requested count.
func shardCount(total, n int) int {
	if total > 0 && n > total {
		return total
	}
	return n
}

// shardBudget divides a global entry budget across n shards, spreading
// the remainder over the leading shards. Callers clamp n with
// shardCount first, so for a positive total every shard receives at
// least one entry and the budgets sum exactly to total — the global
// bound is never overshot. A non-positive total (unlimited / disabled)
// is passed through to every shard unchanged.
func shardBudget(total, n int) []int {
	out := make([]int, n)
	if total <= 0 {
		for i := range out {
			out[i] = total
		}
		return out
	}
	base, rem := total/n, total%n
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// sessionShard owns one hash slice of the session table: the sessions
// that map here, their recency list (front = most recently asked), and
// this shard's share of the MaxSessions budget.
type sessionShard struct {
	mu        sync.Mutex
	sessions  map[string]*list.Element // of *session
	byRecency *list.List
	max       int // <= 0: unlimited
}

func newSessionShard(max int) *sessionShard {
	return &sessionShard{
		sessions:  map[string]*list.Element{},
		byRecency: list.New(),
		max:       max,
	}
}

// flightShard owns one hash slice of the single-flight table:
// in-progress uncached answers whose cache keys map here.
type flightShard struct {
	mu       sync.Mutex
	inflight map[string]*inflightCall
}

func newFlightShard() *flightShard {
	return &flightShard{inflight: map[string]*inflightCall{}}
}
