package engine_test

import (
	"context"
	"fmt"
	"testing"

	"cachemind/internal/engine"
)

// askSequence is a fixed serial workload: every question asked three
// times across a handful of sessions, interleaved so hits and misses
// alternate deterministically.
func askSequence() []engine.Request {
	var seq []engine.Request
	for round := 0; round < 3; round++ {
		for qi, q := range questions {
			seq = append(seq, engine.Request{
				SessionID: fmt.Sprintf("seq-%d", (round+qi)%4),
				Question:  q,
			})
		}
	}
	return seq
}

// TestShardedCacheDeterminism replays the same fixed ask sequence
// through a 1-shard and an 8-shard engine: every answer must be
// byte-identical and the hit/miss totals must agree exactly. A
// question's key always hashes to the same shard, so splitting the
// cache can never change whether a serial lookup hits.
func TestShardedCacheDeterminism(t *testing.T) {
	run := func(shards int) ([]string, engine.Stats) {
		e := newEngine(t, engine.Config{Shards: shards})
		seq := askSequence()
		answers := make([]string, len(seq))
		for i, item := range seq {
			a, err := e.Ask(context.Background(), item)
			if err != nil {
				t.Fatalf("shards=%d ask %d: %v", shards, i, err)
			}
			answers[i] = a.Text
		}
		return answers, e.Stats()
	}

	ans1, st1 := run(1)
	ans8, st8 := run(8)
	for i := range ans1 {
		if ans1[i] != ans8[i] {
			t.Fatalf("answer %d diverges between 1 and 8 shards:\n1: %q\n8: %q", i, ans1[i], ans8[i])
		}
	}
	if st1.CacheHits != st8.CacheHits || st1.CacheMisses != st8.CacheMisses {
		t.Fatalf("hit/miss totals diverge: 1 shard %d/%d, 8 shards %d/%d",
			st1.CacheHits, st1.CacheMisses, st8.CacheHits, st8.CacheMisses)
	}
	// The sequence asks each question 3x: 1 miss + 2 hits per question.
	wantMisses := uint64(len(questions))
	if st1.CacheMisses != wantMisses || st1.CacheHits != 2*wantMisses {
		t.Fatalf("counters = %d hits / %d misses, want %d / %d",
			st1.CacheHits, st1.CacheMisses, 2*wantMisses, wantMisses)
	}
	if st1.Questions != st8.Questions || st1.Sessions != st8.Sessions {
		t.Fatalf("stats diverge: %+v vs %+v", st1, st8)
	}
	if st1.Shards != 1 || st8.Shards != 8 {
		t.Fatalf("Stats.Shards = %d / %d, want 1 / 8", st1.Shards, st8.Shards)
	}
}

// TestAskBatchOrderAndParity: AskBatch returns results in input order,
// each byte-identical to a serial Ask of the same question, at several
// worker bounds (1 = serial fast path).
func TestAskBatchOrderAndParity(t *testing.T) {
	ref := map[string]string{}
	refEngine := newEngine(t, engine.Config{CacheSize: -1})
	for _, q := range questions {
		ref[q] = mustAsk(t, refEngine, "ref", q).Text
	}

	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			e := newEngine(t, engine.Config{})
			items := askSequence()
			results := e.AskBatch(context.Background(), items, workers)
			if len(results) != len(items) {
				t.Fatalf("got %d results for %d items", len(results), len(items))
			}
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("item %d: %v", i, r.Err)
				}
				if r.Response.Text != ref[items[i].Question] {
					t.Fatalf("item %d: answer diverges from serial reference", i)
				}
			}
			// Every exchange must land in its session's log.
			if st := e.Stats(); st.Questions != uint64(len(items)) {
				t.Fatalf("questions counter = %d, want %d", st.Questions, len(items))
			}
		})
	}
}

// TestAskBatchPerItemErrors: an invalid item reports its own typed
// error without aborting the rest of the batch.
func TestAskBatchPerItemErrors(t *testing.T) {
	e := newEngine(t, engine.Config{})
	items := []engine.Request{
		{SessionID: "s", Question: questions[0]},
		{SessionID: "s", Question: "   "}, // invalid: empty after trim
		{SessionID: "s", Question: questions[1]},
	}
	results := e.AskBatch(context.Background(), items, 4)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("valid items failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("empty question accepted in batch")
	}
	if code := engine.ErrorCode(results[1].Err); code != engine.CodeInvalidRequest {
		t.Fatalf("invalid item code = %q, want invalid-request", code)
	}
	if results[0].Response.Text == "" || results[2].Response.Text == "" {
		t.Fatal("valid items returned empty answers")
	}
	if results[1].Response.Text != "" {
		t.Fatalf("failed item carries an answer: %q", results[1].Response.Text)
	}
}

// TestAskBatchEmpty: a nil/empty batch is a no-op.
func TestAskBatchEmpty(t *testing.T) {
	e := newEngine(t, engine.Config{})
	if got := e.AskBatch(context.Background(), nil, 4); len(got) != 0 {
		t.Fatalf("AskBatch(nil) = %d results", len(got))
	}
	if st := e.Stats(); st.Questions != 0 {
		t.Fatalf("empty batch counted questions: %+v", st)
	}
}

// TestShardedSessionBudgetClamped: a MaxSessions budget smaller than
// the shard count clamps the session table's effective shard count, so
// the configured global bound holds exactly — the pre-fix rounding kept
// one session per shard and let 8 live sessions outlast a budget of 2.
func TestShardedSessionBudgetClamped(t *testing.T) {
	e := newEngine(t, engine.Config{MaxSessions: 2, Shards: 8})
	for i := 0; i < 20; i++ {
		mustAsk(t, e, fmt.Sprintf("s%d", i), questions[0])
	}
	st := e.Stats()
	if st.Sessions < 1 || st.Sessions > 2 {
		t.Fatalf("live sessions = %d, want within the global MaxSessions bound of 2", st.Sessions)
	}
	if st.Sessions+int(st.SessionsEvicted) != 20 {
		t.Fatalf("live(%d) + evicted(%d) != 20", st.Sessions, st.SessionsEvicted)
	}
}

// TestShardedCacheBudgetClamped: same bound for the answer cache — a
// CacheSize smaller than the shard count never caches more entries than
// the configured budget.
func TestShardedCacheBudgetClamped(t *testing.T) {
	e := newEngine(t, engine.Config{CacheSize: 2, Shards: 8})
	for i := 0; i < len(questions); i++ {
		mustAsk(t, e, "s", questions[i])
	}
	if st := e.Stats(); st.CacheEntries > 2 {
		t.Fatalf("cache holds %d entries, want <= the global CacheSize bound of 2", st.CacheEntries)
	}
}
