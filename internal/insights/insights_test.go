package insights

import (
	"testing"

	"cachemind/internal/testfix"
	"cachemind/internal/workload"
)

func TestBypassCandidatesFindStreamingPCs(t *testing.T) {
	f, _ := testfix.Store().Frame("mcf", "belady")
	cands := BypassCandidates(f, 30, 1000, 10)
	if len(cands) == 0 {
		t.Fatal("no bypass candidates on mcf (streaming arcs must qualify)")
	}
	found := map[uint64]bool{}
	for _, c := range cands {
		found[c.PC] = true
		if c.HitRatePct > 30 {
			t.Errorf("candidate %#x hit rate %.1f exceeds threshold", c.PC, c.HitRatePct)
		}
	}
	// The arc-scan PCs are the canonical pollution source.
	if !found[0x4037aa] && !found[0x4037b0] {
		t.Errorf("arc-scan PCs not among candidates: %+v", cands)
	}
	// The hot basket PC must never be a bypass candidate.
	if found[0x4037ba] {
		t.Error("hot basket PC must not be bypassed")
	}
}

func TestBypassCandidatesOrderingAndLimit(t *testing.T) {
	f, _ := testfix.Store().Frame("mcf", "belady")
	cands := BypassCandidates(f, 30, 1000, 3)
	if len(cands) > 3 {
		t.Errorf("limit not applied: %d", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Accesses < cands[i].Accesses {
			t.Error("candidates not ordered by traffic")
		}
	}
}

func TestReuseVarianceStableVsNoisy(t *testing.T) {
	accs := workload.MILC.Generate(150000, 9)
	vars := ReuseVariance(accs)
	if len(vars) < 5 {
		t.Fatalf("only %d PCs analyzed", len(vars))
	}
	// Output is sorted by QCD ascending (most stable first).
	for i := 1; i < len(vars); i++ {
		if vars[i-1].QCD > vars[i].QCD {
			t.Fatal("variance output not sorted")
		}
	}
	byPC := map[uint64]PCVariance{}
	for _, v := range vars {
		byPC[v.PC] = v
	}
	stable, scatter := byPC[0x4184b0], byPC[0x413948]
	if stable.Samples == 0 || scatter.Samples == 0 {
		t.Fatal("expected PCs missing")
	}
	if stable.QCD >= scatter.QCD {
		t.Errorf("strided PC QCD (%.3f) should be below scatter PC QCD (%.3f)", stable.QCD, scatter.QCD)
	}
}

func TestStablePCsFilter(t *testing.T) {
	accs := workload.MILC.Generate(150000, 9)
	stable := StablePCs(accs, 0.3, 100)
	if len(stable) == 0 {
		t.Fatal("milc must have stable PCs")
	}
	inStable := map[uint64]bool{}
	for _, pc := range stable {
		inStable[pc] = true
	}
	if !inStable[0x4184b0] {
		t.Error("su3 load PC should be stable")
	}
	if inStable[0x413948] {
		t.Error("irregular scatter PC must not be stable")
	}
	// Sorted ascending.
	for i := 1; i < len(stable); i++ {
		if stable[i-1] >= stable[i] {
			t.Fatal("stable PCs not sorted")
		}
	}
}

func TestDominantMissPC(t *testing.T) {
	// The pointer-chase microbenchmark has one dominant miss PC by
	// construction; verify recovery through a small ad-hoc frame.
	f, _ := testfix.Store().Frame("mcf", "lru")
	pc, misses, rate := DominantMissPC(f)
	if misses == 0 {
		t.Fatal("no misses found")
	}
	// Cross-check: no PC has more misses.
	for _, st := range f.AllPCStats() {
		if st.Misses > misses {
			t.Errorf("PC %#x has %d misses > reported %d for %#x", st.PC, st.Misses, misses, pc)
		}
	}
	if rate <= 0 || rate > 100 {
		t.Errorf("miss rate = %v", rate)
	}
}

func TestSetHotness(t *testing.T) {
	f, _ := testfix.Store().Frame("astar", "belady")
	sc := SetHotness(f, 5, 10)
	if len(sc.Hot) != 5 || len(sc.Cold) != 5 {
		t.Fatalf("hot/cold = %d/%d", len(sc.Hot), len(sc.Cold))
	}
	if sc.Hot[0].HitRatePct < sc.Cold[0].HitRatePct {
		t.Error("hottest set colder than coldest")
	}
	for i := 1; i < 5; i++ {
		if sc.Hot[i-1].HitRatePct < sc.Hot[i].HitRatePct {
			t.Error("hot sets not descending")
		}
		if sc.Cold[i-1].HitRatePct > sc.Cold[i].HitRatePct {
			t.Error("cold sets not ascending")
		}
	}
}

func TestHotSetOverlapAcrossPolicies(t *testing.T) {
	bel, _ := testfix.Store().Frame("astar", "belady")
	lru, _ := testfix.Store().Frame("astar", "lru")
	a := SetHotness(bel, 5, 10)
	b := SetHotness(lru, 5, 10)
	overlap := HotSetOverlap(a, b)
	if overlap < 0 || overlap > 5 {
		t.Errorf("overlap = %d", overlap)
	}
	// Hot sets arise from intrinsic workload locality, so identity
	// should overlap substantially (paper Figure 13 insight).
	if overlap < 2 {
		t.Errorf("hot-set overlap across policies = %d/5, expected intrinsic locality", overlap)
	}
	if HotSetOverlap(a, a) != 5 {
		t.Error("self overlap must be full")
	}
}
