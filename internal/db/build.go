package db

import (
	"fmt"

	"cachemind/internal/parallel"
	"cachemind/internal/policy"
	"cachemind/internal/replay"
	"cachemind/internal/sim"
	"cachemind/internal/trace"
	"cachemind/internal/workload"
)

// BuildConfig parameterizes database construction. Every policy replays
// the *same* access stream per workload (same seed), so cross-policy
// questions compare identical traffic — the property the paper's
// policy-comparison tier depends on.
type BuildConfig struct {
	// Workloads to trace; defaults to the paper's trio (astar, lbm, mcf).
	Workloads []*workload.Workload
	// Policies to replay; defaults to the paper's four (belady, lru,
	// mlp, parrot).
	Policies []string
	// AccessesPerTrace is the stream length per (workload, policy);
	// defaults to 120000.
	AccessesPerTrace int
	// Seed drives workload generation and learned-policy training.
	Seed int64
	// LLC geometry; defaults to Table 2 (2048 sets, 16 ways).
	LLC sim.Config
	// SnapshotEvery samples heavyweight record fields (default 64).
	SnapshotEvery int
	// Parallelism bounds how many (workload, policy) replays run
	// concurrently. <= 0 selects runtime.NumCPU(); 1 reproduces the
	// serial build exactly. The resulting store is identical at every
	// setting: traces and oracles are generated once per workload and
	// shared read-only, and frames land in deterministic order.
	Parallelism int
}

func (c BuildConfig) withDefaults() BuildConfig {
	if len(c.Workloads) == 0 {
		c.Workloads = workload.Core()
	}
	if len(c.Policies) == 0 {
		c.Policies = policy.Core()
	}
	if c.AccessesPerTrace <= 0 {
		c.AccessesPerTrace = 120000
	}
	if c.LLC.Sets == 0 {
		c.LLC = sim.DefaultMachineConfig().LLC
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 64
	}
	return c
}

// Build generates traces, replays them under every policy and assembles
// the store. Deterministic for a fixed config, at every Parallelism.
func Build(cfg BuildConfig) (*Store, error) {
	cfg = cfg.withDefaults()

	// Workloads fan out, and within each workload the policy replays
	// fan out (both bounded by Parallelism — the knob is per fan-out
	// level). Each workload's trace, training stream and next-use
	// oracle are generated once and shared read-only by its policy
	// replays, then released when the workload's frames are done — so
	// Parallelism=1 keeps the old serial loop's one-workload-resident
	// memory profile. Frames land in input order at every setting.
	frameGroups, err := parallel.Map(len(cfg.Workloads), cfg.Parallelism, func(wi int) ([]*Frame, error) {
		w := cfg.Workloads[wi]
		accs := w.Generate(cfg.AccessesPerTrace, cfg.Seed)
		// Learned policies train on a disjoint stream of the same
		// workload (different seed), never on the evaluation trace.
		train := w.Generate(cfg.AccessesPerTrace/2, cfg.Seed+1)
		oracle := trace.NextUseOracle(accs)
		return parallel.Map(len(cfg.Policies), cfg.Parallelism, func(pi int) (*Frame, error) {
			polName := cfg.Policies[pi]
			pol, err := policy.New(polName, cfg.LLC, policy.Options{
				Seed:   cfg.Seed,
				Oracle: oracle,
				Train:  train,
			})
			if err != nil {
				return nil, fmt.Errorf("db: building %s/%s: %w", w.Name(), polName, err)
			}
			res := replay.Run(accs, cfg.LLC, pol, replay.Options{SnapshotEvery: cfg.SnapshotEvery})
			return frameFromReplay(w, polName, res), nil
		})
	})
	if err != nil {
		return nil, err
	}

	store := NewStore()
	for _, group := range frameGroups {
		for _, f := range group {
			store.Put(f)
		}
	}
	return store, nil
}

// MustBuild is Build for static configurations; it panics on error.
func MustBuild(cfg BuildConfig) *Store {
	s, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func frameFromReplay(w *workload.Workload, polName string, res replay.Result) *Frame {
	sum := FrameSummary{
		Accesses:        res.Summary.Accesses,
		Hits:            res.Summary.Hits,
		Misses:          res.Summary.Misses,
		Evictions:       res.Summary.Evictions,
		ColdMisses:      res.Summary.ColdMisses,
		CapacityMisses:  res.Summary.CapacityMisses,
		ConflictMisses:  res.Summary.ConflictMisses,
		WrongEvictions:  res.Summary.WrongEvictions,
		RecencyMissCorr: res.Summary.RecencyMissCorr,
	}
	desc := fmt.Sprintf("Workload: %s Replacement policy: %s", w.Description(), policy.Describe(polName))
	return NewFrame(w.Name(), polName, res.Records, w.Symbols(), sum, desc)
}
