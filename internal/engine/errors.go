package engine

import (
	"context"
	"errors"
	"fmt"
)

// Code classifies an ask-path failure. Codes are the machine-readable
// half of the engine's error contract: front-ends map them
// deterministically to transport statuses (cmd/cachemindd's HTTP
// table) instead of pattern-matching message strings, and they are
// stable wire values — renaming one is a breaking API change.
type Code string

const (
	// CodeInvalidRequest rejects a malformed Request (empty question,
	// unparseable body, oversized payload).
	CodeInvalidRequest Code = "invalid-request"
	// CodeSessionNotFound reports a lookup of a session that was never
	// asked a question, or was evicted by the MaxSessions bound.
	CodeSessionNotFound Code = "session-not-found"
	// CodeCanceled reports that the request's context was canceled
	// (typically a disconnected client) before the answer completed.
	CodeCanceled Code = "canceled"
	// CodeDeadlineExceeded reports that the request's deadline expired
	// before the answer completed.
	CodeDeadlineExceeded Code = "deadline-exceeded"
	// CodeOverloaded reports admission-control rejection: the server
	// shed the request without running the pipeline.
	CodeOverloaded Code = "overloaded"
	// CodeInternal is the residual bucket for unexpected failures.
	CodeInternal Code = "internal"
)

// Error is the engine's typed failure: a stable Code for machines, a
// human-readable Message, and the wrapped cause (errors.Is/As work
// through it).
type Error struct {
	Code    Code
	Message string
	// Err is the underlying cause, if any (e.g. context.Canceled).
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	if e.Message == "" && e.Err != nil {
		return fmt.Sprintf("engine: %s: %v", e.Code, e.Err)
	}
	return fmt.Sprintf("engine: %s: %s", e.Code, e.Message)
}

// Unwrap exposes the cause to errors.Is/errors.As.
func (e *Error) Unwrap() error { return e.Err }

// Errf builds a typed engine error with a formatted message.
func Errf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// ErrorCode extracts the Code from any error: a wrapped *Error yields
// its code, bare context errors map to canceled/deadline-exceeded, nil
// yields the empty code, and everything else is internal.
func ErrorCode(err error) Code {
	if err == nil {
		return ""
	}
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return CodeDeadlineExceeded
	}
	if errors.Is(err, context.Canceled) {
		return CodeCanceled
	}
	return CodeInternal
}

// ErrorMessage returns the human-readable message for an error — the
// *Error's Message when present, otherwise the full error string. This
// is what front-ends put in the wire envelope next to the code.
func ErrorMessage(err error) string {
	if err == nil {
		return ""
	}
	var e *Error
	if errors.As(err, &e) && e.Message != "" {
		return e.Message
	}
	return err.Error()
}

// IsCancellation reports whether the code is one of the two
// context-derived codes — the outcomes a load generator counts as
// "canceled" rather than as request failures.
func IsCancellation(c Code) bool {
	return c == CodeCanceled || c == CodeDeadlineExceeded
}

// ctxError converts a done context into the matching typed error; it
// returns nil while the context is live. This is the engine's
// cancellation checkpoint, run between pipeline stages.
func ctxError(ctx context.Context) error {
	err := ctx.Err()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Code: CodeDeadlineExceeded, Message: "request deadline exceeded", Err: err}
	default:
		return &Error{Code: CodeCanceled, Message: "request canceled", Err: err}
	}
}
