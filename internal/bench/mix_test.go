package bench_test

import (
	"strings"
	"testing"

	"cachemind/internal/bench"
	"cachemind/internal/db/dbtest"
	"cachemind/internal/embed"
)

func mixSuite(t *testing.T) *bench.Suite {
	t.Helper()
	s, err := bench.Generate(dbtest.Store(t, dbtest.Config{}), 7)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSampleMixDeterministic(t *testing.T) {
	s := mixSuite(t)
	a := bench.SampleMix(s, 200, 42, 0.5)
	b := bench.SampleMix(s, 200, 42, 0.5)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("lengths = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical calls: %q vs %q", i, a[i], b[i])
		}
	}
	if c := bench.SampleMix(s, 200, 43, 0.5); len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced an identical stream")
		}
	}
}

func TestSampleMixCoversSuiteAtRepeatZero(t *testing.T) {
	s := mixSuite(t)
	n := len(s.Questions)
	// Distinct suite entries can render the same text, so coverage is
	// asserted by text multiplicity: one pass at repeat=0 asks each
	// text exactly as often as it appears in the suite.
	want := map[string]int{}
	for _, q := range s.Questions {
		want[q.Text]++
	}
	counts := map[string]int{}
	for _, q := range bench.SampleMix(s, n, 1, 0) {
		counts[q]++
	}
	for text, c := range want {
		if counts[text] != c {
			t.Fatalf("repeat=0 first pass asked %q %d times, want %d", text, counts[text], c)
		}
	}
	// Past one pass the order recycles, still covering everything.
	counts = map[string]int{}
	for _, q := range bench.SampleMix(s, 3*n, 1, 0) {
		counts[q]++
	}
	for text, c := range want {
		if counts[text] != 3*c {
			t.Fatalf("repeat=0 over 3 passes asked %q %d times, want %d", text, counts[text], 3*c)
		}
	}
}

func TestSampleMixDrawsFromSuite(t *testing.T) {
	s := mixSuite(t)
	valid := map[string]bool{}
	for _, q := range s.Questions {
		valid[q.Text] = true
	}
	for _, q := range bench.SampleMix(s, 500, 9, 0.7) {
		if !valid[q] {
			t.Fatalf("mix emitted a question not in the suite: %q", q)
		}
	}
}

func TestSampleMixRepeatRatio(t *testing.T) {
	s := mixSuite(t)
	// repeat=1: after the first draw every draw repeats it.
	all := bench.SampleMix(s, 50, 3, 1)
	for i, q := range all {
		if q != all[0] {
			t.Fatalf("repeat=1 draw %d = %q, want %q", i, q, all[0])
		}
	}
	// repeat=0.5 over a long stream: the repeated fraction (draws seen
	// before) should overshoot 0.5 — repeats plus fresh draws that
	// recycle — but stay below 1.
	mix := bench.SampleMix(s, 2000, 11, 0.5)
	seen := map[string]bool{}
	repeats := 0
	for _, q := range mix {
		if seen[q] {
			repeats++
		}
		seen[q] = true
	}
	frac := float64(repeats) / float64(len(mix))
	if frac < 0.45 || frac > 0.999 {
		t.Fatalf("repeat=0.5 stream has repeated fraction %.3f, want within (0.45, 1)", frac)
	}
	// Clamping: out-of-range ratios behave as their clamps.
	if got := bench.SampleMix(s, 10, 3, 1.7); got[5] != got[0] {
		t.Fatal("repeat > 1 not clamped to 1")
	}
	if got := bench.SampleMix(s, 5, 1, -0.3); got[0] == got[1] && got[1] == got[2] {
		t.Fatal("repeat < 0 not clamped to 0")
	}
}

// TestSampleMixParaphraseZeroIsByteIdentical pins the compatibility
// contract: at paraphrase 0 the extended sampler replays SampleMix's
// stream byte for byte — the paraphrase coin must not consume rng
// draws when the knob is off, or every existing BENCH baseline shifts.
func TestSampleMixParaphraseZeroIsByteIdentical(t *testing.T) {
	s := mixSuite(t)
	a := bench.SampleMix(s, 500, 42, 0.6)
	b := bench.SampleMixParaphrase(s, 500, 42, 0.6, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs with paraphrase=0: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestSampleMixParaphraseEmitsVariants: a live paraphrase knob emits
// reworded draws (not in the suite verbatim), every such draw embeds
// close to some earlier draw in the stream (it reworded one of them —
// paraphrases can stack, so closeness to the original suite question
// is not guaranteed, only closeness to the reworded source), and the
// stream stays deterministic.
func TestSampleMixParaphraseEmitsVariants(t *testing.T) {
	s := mixSuite(t)
	valid := map[string]bool{}
	for _, q := range s.Questions {
		valid[q.Text] = true
	}
	mix := bench.SampleMixParaphrase(s, 800, 5, 0.6, 0.5)
	var seen []embed.Vector
	reworded := 0
	for i, q := range mix {
		qv := embed.Embed(q)
		if !valid[q] {
			reworded++
			best := -1.0
			for _, v := range seen {
				if c := embed.Cosine(qv, v); c > best {
					best = c
				}
			}
			if best < 0.9 {
				t.Fatalf("reworded draw %d %q is not a paraphrase of any earlier draw (best cosine %.3f)", i, q, best)
			}
		}
		seen = append(seen, qv)
	}
	if reworded == 0 {
		t.Fatal("paraphrase=0.5 emitted no reworded draws over 800")
	}
	again := bench.SampleMixParaphrase(s, 800, 5, 0.6, 0.5)
	for i := range mix {
		if mix[i] != again[i] {
			t.Fatalf("paraphrase stream not deterministic at draw %d", i)
		}
	}
}

// TestParaphraseVariants: every variant keeps high embedding
// similarity to the original, the cycle wraps modulo
// ParaphraseVariants (negatives included), and the punctuation variant
// changes bytes in both the "." and "?" terminal cases.
func TestParaphraseVariants(t *testing.T) {
	q := "List all unique PCs in mcf under LRU."
	qv := embed.Embed(q)
	for v := 0; v < bench.ParaphraseVariants; v++ {
		p := bench.Paraphrase(q, v)
		if c := embed.Cosine(qv, embed.Embed(p)); c < 0.85 {
			t.Fatalf("variant %d %q has cosine %.3f to original, want >= 0.85", v, p, c)
		}
		if p == q {
			t.Fatalf("variant %d left %q unchanged", v, q)
		}
	}
	if got := bench.Paraphrase(q, bench.ParaphraseVariants); got != bench.Paraphrase(q, 0) {
		t.Fatalf("variant index does not wrap: %q vs %q", got, bench.Paraphrase(q, 0))
	}
	if got := bench.Paraphrase(q, -1); got != bench.Paraphrase(q, bench.ParaphraseVariants-1) {
		t.Fatalf("negative variant index does not wrap: %q", got)
	}
	if got := bench.Paraphrase("What is the hit rate?", 2); !strings.HasSuffix(got, ".") {
		t.Fatalf("punctuation variant on a ?-terminated question = %q, want .-terminated", got)
	}
	if got := bench.Paraphrase("State the hit rate.", 2); !strings.HasSuffix(got, "?") {
		t.Fatalf("punctuation variant on a .-terminated question = %q, want ?-terminated", got)
	}
}

func TestSampleMixEdgeCases(t *testing.T) {
	s := mixSuite(t)
	if got := bench.SampleMix(s, 0, 1, 0.5); got != nil {
		t.Fatalf("n=0 returned %v", got)
	}
	if got := bench.SampleMix(&bench.Suite{}, 10, 1, 0.5); got != nil {
		t.Fatalf("empty suite returned %v", got)
	}
	if got := bench.SampleMix(s, 1, 1, 1); len(got) != 1 {
		t.Fatalf("n=1 returned %d draws", len(got))
	}
}
