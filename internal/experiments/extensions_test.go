package experiments

import (
	"strings"
	"testing"
)

func TestPolicyTableShape(t *testing.T) {
	r := PolicyTable(testLab(t), 30000, []string{"lru", "belady", "ship", "hawkeye", "srrip"})
	if len(r.Workloads) != 4 {
		t.Fatalf("workloads = %v", r.Workloads)
	}
	for _, w := range r.Workloads {
		row := r.HitRatePct[w]
		if len(row) != 5 {
			t.Fatalf("%s: %d policies", w, len(row))
		}
		for p, hr := range row {
			if hr < 0 || hr > 100 {
				t.Errorf("%s/%s hit rate %v out of range", w, p, hr)
			}
			// Belady dominates every practical policy.
			if p != "belady" && hr > row["belady"]+1e-9 {
				t.Errorf("%s: %s (%.2f) beats Belady (%.2f)", w, p, hr, row["belady"])
			}
		}
	}
	out := r.String()
	if !strings.Contains(out, "belady") || !strings.Contains(out, "astar") {
		t.Error("rendering broken")
	}
}

func TestPrefetchInteraction(t *testing.T) {
	r := PrefetchInteraction(testLab(t), 120000)
	if len(r.Prefetchers) != 3 || len(r.Policies) != 3 {
		t.Fatalf("matrix shape wrong: %v x %v", r.Prefetchers, r.Policies)
	}
	// The stride prefetcher must help at least one policy on milc's
	// regular strides.
	helped := false
	for _, pol := range r.Policies {
		if r.IPC["stride"][pol] > r.IPC["none"][pol] {
			helped = true
		}
		if r.IPC["none"][pol] <= 0 {
			t.Errorf("baseline IPC for %s is zero", pol)
		}
	}
	if !helped {
		t.Error("stride prefetching helped no policy on a strided workload")
	}
	if !strings.Contains(r.String(), "stride") {
		t.Error("rendering broken")
	}
}

func TestShotsStudy(t *testing.T) {
	r := ShotsStudy(testLab(t), "gpt-4o-mini")
	if len(r.Shots) != 3 {
		t.Fatalf("shots = %v", r.Shots)
	}
	// Paper finding 1: overall totals move little (within a few points).
	if diff := r.Total[3] - r.Total[0]; diff > 10 || diff < -10 {
		t.Errorf("few-shot moved total by %.1f pp; paper reports no significant change", diff)
	}
	// Paper finding 2: examples help trick-question rejection.
	if r.TrickPct[3] < r.TrickPct[0] {
		t.Errorf("few-shot trick accuracy (%.1f) below zero-shot (%.1f)", r.TrickPct[3], r.TrickPct[0])
	}
	if !strings.Contains(r.String(), "Trick accuracy") {
		t.Error("rendering broken")
	}
}

func TestMakeShotsFormat(t *testing.T) {
	shots := MakeShots(testLab(t), 3)
	if len(shots) != 3 {
		t.Fatalf("shots = %d", len(shots))
	}
	for _, s := range shots {
		if !strings.Contains(s.Context, "Cache result:") {
			t.Errorf("shot context malformed: %q", s.Context)
		}
		if s.Answer != "Cache Hit" && s.Answer != "Cache Miss" {
			t.Errorf("shot answer = %q", s.Answer)
		}
		if !strings.Contains(s.Question, "0x") {
			t.Errorf("shot question lacks symbols: %q", s.Question)
		}
	}
}

func TestSieveSemanticAblation(t *testing.T) {
	r := SieveSemanticAblation(testLab(t))
	if r.Total != 4 {
		t.Fatalf("total = %d", r.Total)
	}
	if r.ResolvedWith <= r.ResolvedWithout {
		t.Errorf("semantic stage should resolve more paraphrases (with=%d, without=%d)",
			r.ResolvedWith, r.ResolvedWithout)
	}
	if r.ResolvedWithout != 0 {
		t.Errorf("paraphrases avoid workload tokens; token matching resolved %d", r.ResolvedWithout)
	}
	if !strings.Contains(r.String(), "semantic") {
		t.Error("rendering broken")
	}
}
