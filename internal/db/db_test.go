package db

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"cachemind/internal/trace"
)

// testStore builds one small shared store for the whole package's tests.
var (
	storeOnce sync.Once
	shared    *Store
)

func testStore(t *testing.T) *Store {
	t.Helper()
	storeOnce.Do(func() {
		shared = MustBuild(BuildConfig{AccessesPerTrace: 25000, Seed: 42})
	})
	return shared
}

func TestBuildCoversAllKeys(t *testing.T) {
	s := testStore(t)
	keys := s.Keys()
	if len(keys) != 12 { // 3 workloads x 4 policies
		t.Fatalf("keys = %d (%v), want 12", len(keys), keys)
	}
	for _, w := range []string{"astar", "lbm", "mcf"} {
		for _, p := range []string{"belady", "lru", "mlp", "parrot"} {
			f, ok := s.Frame(w, p)
			if !ok {
				t.Fatalf("missing frame %s/%s", w, p)
			}
			if f.Len() != 25000 {
				t.Errorf("%s: %d records, want 25000", f.Key(), f.Len())
			}
			if f.Key() != w+"_evictions_"+p {
				t.Errorf("key format = %q", f.Key())
			}
		}
	}
}

func TestStoreLookups(t *testing.T) {
	s := testStore(t)
	if _, ok := s.Frame("mcf", "lru"); !ok {
		t.Error("Frame lookup failed")
	}
	if _, ok := s.FrameByKey("mcf_evictions_lru"); !ok {
		t.Error("FrameByKey lookup failed")
	}
	if _, ok := s.Frame("bogus", "lru"); ok {
		t.Error("bogus workload resolved")
	}
	if got := s.Workloads(); len(got) != 3 || got[0] != "astar" {
		t.Errorf("Workloads = %v", got)
	}
	if got := s.Policies(); len(got) != 4 || got[0] != "belady" {
		t.Errorf("Policies = %v", got)
	}
	if got := s.FramesForWorkload("lbm"); len(got) != 4 {
		t.Errorf("FramesForWorkload(lbm) = %d frames", len(got))
	}
}

func TestMetadataFormat(t *testing.T) {
	s := testStore(t)
	f, _ := s.Frame("mcf", "lru")
	md := f.Metadata
	for _, want := range []string{
		"Cache Performance Summary:", "total accesses", "total misses",
		"miss rate", "capacity misses", "conflict misses", "total evictions",
		"wrong evictions where evicted line has lower reuse distance",
		"correlation between accessed address recency and cache misses",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("metadata missing %q:\n%s", want, md)
		}
	}
	if f.Description == "" {
		t.Error("empty description")
	}
}

func TestCrossPolicySameTraffic(t *testing.T) {
	s := testStore(t)
	lru, _ := s.Frame("astar", "lru")
	bel, _ := s.Frame("astar", "belady")
	if lru.Len() != bel.Len() {
		t.Fatal("frames differ in length")
	}
	for i := 0; i < lru.Len(); i += 997 {
		a, b := lru.Record(i), bel.Record(i)
		if a.PC != b.PC || a.Addr != b.Addr {
			t.Fatalf("record %d traffic differs across policies", i)
		}
	}
	// Belady must not lose to LRU.
	if bel.Summary.Hits < lru.Summary.Hits {
		t.Error("Belady hits below LRU")
	}
}

func TestIndexesConsistent(t *testing.T) {
	s := testStore(t)
	f, _ := s.Frame("lbm", "lru")
	total := 0
	for _, pc := range f.PCs() {
		rows := f.RowsForPC(pc)
		total += len(rows)
		for _, i := range rows {
			if f.Record(int(i)).PC != pc {
				t.Fatalf("PC index broken at row %d", i)
			}
		}
	}
	if total != f.Len() {
		t.Errorf("PC index covers %d of %d records", total, f.Len())
	}
	// PC+addr index refines the PC index.
	pc := f.PCs()[0]
	addr := f.Record(int(f.RowsForPC(pc)[0])).Addr
	for _, i := range f.RowsForPCAddr(pc, addr) {
		r := f.Record(int(i))
		if r.PC != pc || r.Addr != addr {
			t.Fatal("PC+addr index broken")
		}
	}
	// Set index partitions records too.
	total = 0
	for _, set := range f.Sets() {
		total += len(f.RowsForSet(set))
	}
	if total != f.Len() {
		t.Errorf("set index covers %d of %d records", total, f.Len())
	}
}

func TestHasPCAndTrickPremise(t *testing.T) {
	s := testStore(t)
	mcf, _ := s.Frame("mcf", "lru")
	lbm, _ := s.Frame("lbm", "lru")
	if !mcf.HasPC(0x4037aa) {
		t.Error("mcf should contain its arc-scan PC")
	}
	if lbm.HasPC(0x4037aa) {
		t.Error("lbm must not contain mcf's PC (trick-question premise)")
	}
	ws := s.WorkloadsWithPC(0x4037aa)
	if len(ws) != 1 || ws[0] != "mcf" {
		t.Errorf("WorkloadsWithPC = %v, want [mcf]", ws)
	}
}

func TestValueColumns(t *testing.T) {
	s := testStore(t)
	f, _ := s.Frame("astar", "lru")
	for _, col := range Columns() {
		if _, err := f.Value(col, 0); err != nil {
			t.Errorf("Value(%s) failed: %v", col, err)
		}
	}
	if _, err := f.Value("nonexistent", 0); err == nil {
		t.Error("unknown column should error")
	}
	// Spot-check typed values.
	v, _ := f.Value(ColEvict, 0)
	if v != "Cache Miss" && v != "Cache Hit" {
		t.Errorf("evict value = %v", v)
	}
	v, _ = f.Value(ColFunctionName, 0)
	if v == "<unknown>" || v == "" {
		t.Errorf("function name unresolved: %v", v)
	}
	v, _ = f.Value(ColAssembly, 0)
	if !strings.Contains(v.(string), ":") {
		t.Errorf("assembly looks wrong: %v", v)
	}
}

func TestNumericValueSentinels(t *testing.T) {
	s := testStore(t)
	f, _ := s.Frame("mcf", "lru")
	// Find a record with NoReuse and confirm ok=false.
	foundDead, foundLive := false, false
	for i := 0; i < f.Len(); i++ {
		r := f.Record(i)
		if r.AccessedReuseDist == trace.NoReuse && !foundDead {
			if _, ok := f.NumericValue(ColAccessReuse, i); ok {
				t.Error("NoReuse should not be numeric")
			}
			foundDead = true
		}
		if r.AccessedReuseDist > 0 && !foundLive {
			v, ok := f.NumericValue(ColAccessReuse, i)
			if !ok || v != float64(r.AccessedReuseDist) {
				t.Error("numeric reuse wrong")
			}
			foundLive = true
		}
		if foundDead && foundLive {
			break
		}
	}
	if !foundDead || !foundLive {
		t.Error("test data lacked both dead and live accesses")
	}
}

func TestPCStats(t *testing.T) {
	s := testStore(t)
	f, _ := s.Frame("mcf", "lru")
	st, ok := f.StatsForPC(0x4037ba) // hot basket PC
	if !ok {
		t.Fatal("basket PC missing")
	}
	if st.Accesses == 0 || st.Hits+st.Misses != st.Accesses {
		t.Errorf("inconsistent stats: %+v", st)
	}
	if st.MissRatePct+st.HitRatePct < 99.9 || st.MissRatePct+st.HitRatePct > 100.1 {
		t.Errorf("rates do not sum to 100: %+v", st)
	}
	if st.FunctionName != "primal_bea_mpp" {
		t.Errorf("function name = %q", st.FunctionName)
	}
	// The streaming arc PC must have a far higher miss rate than the
	// basket PC.
	scan, _ := f.StatsForPC(0x4037aa)
	if scan.MissRatePct <= st.MissRatePct {
		t.Errorf("scan PC miss rate (%.1f) should exceed basket's (%.1f)",
			scan.MissRatePct, st.MissRatePct)
	}
	if _, ok := f.StatsForPC(0xdeadbeef); ok {
		t.Error("stats for absent PC should fail")
	}
}

func TestAllPCStatsSortedAndComplete(t *testing.T) {
	s := testStore(t)
	f, _ := s.Frame("lbm", "belady")
	all := f.AllPCStats()
	if len(all) != len(f.PCs()) {
		t.Fatalf("AllPCStats = %d entries, want %d", len(all), len(f.PCs()))
	}
	total := 0
	for i, st := range all {
		if i > 0 && all[i-1].PC >= st.PC {
			t.Error("AllPCStats not sorted")
		}
		total += st.Accesses
	}
	if total != f.Len() {
		t.Errorf("per-PC accesses sum to %d, want %d", total, f.Len())
	}
}

func TestSetStats(t *testing.T) {
	s := testStore(t)
	f, _ := s.Frame("astar", "belady")
	sets := f.Sets()
	if len(sets) == 0 {
		t.Fatal("no sets")
	}
	st, ok := f.StatsForSet(sets[0])
	if !ok || st.Accesses == 0 {
		t.Fatalf("set stats = %+v, %v", st, ok)
	}
	all := f.AllSetStats()
	total := 0
	for _, st := range all {
		total += st.Accesses
	}
	if total != f.Len() {
		t.Errorf("per-set accesses sum to %d, want %d", total, f.Len())
	}
	if _, ok := f.StatsForSet(99999); ok {
		t.Error("stats for untouched set should fail")
	}
}

func TestSchemaDoc(t *testing.T) {
	s := testStore(t)
	doc := s.SchemaDoc()
	for _, want := range []string{"loaded_data", "astar", "belady", ColPC, ColEvictionScores} {
		if !strings.Contains(doc, want) {
			t.Errorf("schema doc missing %q", want)
		}
	}
}

// Property: miss-rate percentages recomputed from raw records always
// match the statistical expert.
func TestPCStatsMatchRawProperty(t *testing.T) {
	s := testStore(t)
	f, _ := s.Frame("astar", "lru")
	pcs := f.PCs()
	prop := func(idx uint8) bool {
		pc := pcs[int(idx)%len(pcs)]
		st, _ := f.StatsForPC(pc)
		misses := 0
		for _, i := range f.RowsForPC(pc) {
			if !f.Record(int(i)).Hit {
				misses++
			}
		}
		return st.Misses == misses
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
