package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"cachemind/internal/db/dbtest"
	"cachemind/internal/engine"
)

func newTestEngine(t *testing.T) *engine.Engine {
	t.Helper()
	eng, err := engine.New(engine.Config{Store: dbtest.Store(t, dbtest.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestREPLSmoke drives the REPL loop through piped stdin, the way
// `echo "..." | cachemind` runs it, and checks the transcript shape:
// banner, prompts, and the engine's answer verbatim.
func TestREPLSmoke(t *testing.T) {
	eng := newTestEngine(t)
	q := "List all unique PCs in mcf under LRU."
	want, err := eng.Ask(context.Background(), engine.Request{SessionID: "ref", Question: q})
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	in := strings.NewReader(q + "\n" + "\n" + "What is the miss rate in mcf under belady?\n")
	runREPL(context.Background(), eng, false, in, &out)
	got := out.String()

	if !strings.HasPrefix(got, "CacheMind chat — model CacheMind+GPT-4o, retriever ranger.") {
		t.Fatalf("banner missing or wrong:\n%s", got)
	}
	if !strings.Contains(got, "Workloads: mcf. Policies: belady, lru.") {
		t.Fatalf("banner store summary wrong:\n%s", got)
	}
	if !strings.Contains(got, "Ask trace-grounded questions; Ctrl-D to exit.\n") {
		t.Fatalf("instructions line missing:\n%s", got)
	}
	if !strings.Contains(got, want.Text+"\n") {
		t.Fatalf("answer text missing from transcript.\ntranscript:\n%s\nwant:\n%s", got, want.Text)
	}
	// Three reads (one blank, skipped without output) plus the EOF
	// prompt: four "> " markers.
	if n := strings.Count(got, "> "); n != 4 {
		t.Fatalf("prompt count = %d, want 4:\n%s", n, got)
	}
	if !strings.HasSuffix(got, "> \n") {
		t.Fatalf("missing final newline after the EOF prompt:\n%q", got[len(got)-20:])
	}
}

// TestREPLShowContext checks the -show-context frame around answers.
func TestREPLShowContext(t *testing.T) {
	eng := newTestEngine(t)
	var out bytes.Buffer
	runREPL(context.Background(), eng, true, strings.NewReader("What is the miss rate in mcf under lru?\n"), &out)
	got := out.String()
	if !strings.Contains(got, "--- retrieved context (quality ") {
		t.Fatalf("context header missing:\n%s", got)
	}
	if !strings.Contains(got, "\n---\n") {
		t.Fatalf("context footer missing:\n%s", got)
	}
}

// TestREPLSharedEnginePath asserts the REPL records its turns in the
// engine's "repl" session — the CLI and daemon share one ask-path.
func TestREPLSharedEnginePath(t *testing.T) {
	eng := newTestEngine(t)
	var out bytes.Buffer
	q := "Which policy has the lowest miss rate in mcf?"
	runREPL(context.Background(), eng, false, strings.NewReader(q+"\n"), &out)
	turns, ok := eng.SessionTurns("repl")
	if !ok || len(turns) != 1 || turns[0].Question != q {
		t.Fatalf("repl session log = %+v, ok=%v", turns, ok)
	}
}
