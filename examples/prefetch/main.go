// Prefetch example (paper §6.3, Figure 12): recover the dominant
// miss-causing PC of a pointer-chasing microbenchmark through the
// conversational pipeline, then measure the IPC effect of the software
// prefetch inserted at that PC.
package main

import (
	"context"
	"fmt"
	"log"

	"cachemind/internal/db"
	"cachemind/internal/experiments"
	"cachemind/internal/generator"
	"cachemind/internal/llm"
	"cachemind/internal/memory"
	"cachemind/internal/retriever"
	"cachemind/internal/sim"
	"cachemind/internal/workload"
)

func main() {
	log.SetFlags(0)

	// Ingest the microbenchmark's trace as its own database, the way
	// the paper's gem5-based CacheMind ingests new trace sources.
	log.Println("tracing the microbenchmark...")
	store, err := db.Build(db.BuildConfig{
		Workloads:        []*workload.Workload{workload.PointerChase},
		Policies:         []string{"lru"},
		AccessesPerTrace: 40000,
		Seed:             7,
		LLC:              sim.Config{Name: "LLC", Sets: 256, Ways: 8, Latency: 26, MSHRs: 64},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The Figure 12 session.
	profile, _ := llm.ByID("gpt-4o")
	gen := generator.New(profile)
	gen.Memory = memory.New(4)
	ranger := retriever.NewRanger(store)
	session := []string{
		"List all unique PCs in the pointerchase trace under LRU.",
		"From the unique PCs, identify the PC causing the most cache misses in pointerchase under LRU.",
		"What is the miss rate of PC 0x400512 in pointerchase under LRU?",
	}
	for i, q := range session {
		rctx := ranger.Retrieve(context.Background(), q)
		ans, _ := gen.Answer(context.Background(), fmt.Sprintf("prefetch-%d", i), rctx.Parsed.Intent.String(), q, rctx)
		fmt.Printf("User: %s\nAssistant: %s\n\n", q, ans.Text)
	}

	// Apply the fix (the prefetch variant models the __builtin_prefetch
	// insertion) and measure.
	log.Println("measuring the fix in the timing model...")
	lab := experiments.MustNewLab(experiments.LabConfig{AccessesPerTrace: 20000, Seed: 42})
	fmt.Println(experiments.Prefetch(lab, 200000))
}
