// Package experiments regenerates every table and figure in the paper's
// evaluation (the E1-E13 experiment index): the CacheMindBench
// accuracy figures (4, 5, 7, 8), the retriever comparison (Figure 9),
// the benchmark and simulator configuration tables (1, 2), and the §6.3
// actionable-insight use cases (bypass, Mockingjay stable-PC training,
// software prefetching, set hotness, Belady-vs-PARROT per-PC analysis).
// cmd/benchrun and the top-level benchmarks are thin wrappers over this
// package.
package experiments

import (
	"cachemind/internal/bench"
	"cachemind/internal/db"
	"cachemind/internal/llm"
	"cachemind/internal/retriever"
	"cachemind/internal/sim"
)

// Lab bundles the artifacts every experiment grounds against: the
// external database and the benchmark suite generated from it.
type Lab struct {
	Store *db.Store
	Suite *bench.Suite
	// Seed drives every stochastic element downstream (machine
	// experiments, suite generation).
	Seed int64
	// LLC is the geometry used for the database traces.
	LLC sim.Config
	// Parallelism is the worker bound the figure harnesses and the
	// pipelines built from this lab inherit, applied per fan-out level
	// (a figure fanning out across backends whose evaluations fan out
	// across questions can run up to bound^2 goroutines; actual CPU use
	// stays capped by GOMAXPROCS). <= 0 selects runtime.NumCPU(); 1
	// reproduces serial runs. Every experiment's *output* is identical
	// at any setting; wall-clock columns (Figure 9's retrieval latency)
	// are measured under whatever contention the setting creates.
	Parallelism int
}

// LabConfig parameterizes lab construction.
type LabConfig struct {
	// AccessesPerTrace is the database trace length (default 120000).
	AccessesPerTrace int
	// Seed defaults to 42.
	Seed int64
	// LLC defaults to a 256x8 geometry that produces capacity pressure
	// at moderate trace lengths; pass the Table 2 LLC explicitly for
	// full-scale runs.
	LLC sim.Config
	// Parallelism bounds concurrency for the database build and for
	// every experiment run from the lab (<= 0: runtime.NumCPU(), 1:
	// serial).
	Parallelism int
}

// NewLab builds the database and benchmark suite.
func NewLab(cfg LabConfig) (*Lab, error) {
	if cfg.AccessesPerTrace <= 0 {
		cfg.AccessesPerTrace = 120000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.LLC.Sets == 0 {
		cfg.LLC = sim.Config{Name: "LLC", Sets: 256, Ways: 8, Latency: 26, MSHRs: 64}
	}
	store, err := db.Build(db.BuildConfig{
		AccessesPerTrace: cfg.AccessesPerTrace,
		Seed:             cfg.Seed,
		LLC:              cfg.LLC,
		Parallelism:      cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	suite, err := bench.Generate(store, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Lab{
		Store: store, Suite: suite, Seed: cfg.Seed, LLC: cfg.LLC,
		Parallelism: cfg.Parallelism,
	}, nil
}

// MustNewLab panics on error.
func MustNewLab(cfg LabConfig) *Lab {
	l, err := NewLab(cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// DefaultPipeline returns CacheMind's default retrieval configuration
// for a backend: Ranger answers the trace-grounded tier, Sieve's richer
// narrative bundles ground the analysis tier (the pairing behind the
// paper's headline 89.33% TG / 84.80% ARA numbers).
func (l *Lab) DefaultPipeline(p *llm.Profile) bench.Pipeline {
	return bench.Pipeline{
		TGRetriever:  retriever.NewRanger(l.Store),
		ARARetriever: retriever.NewSieve(l.Store),
		Profile:      p,
		Parallelism:  l.Parallelism,
	}
}

// OracleProfile returns a generator profile with perfect competence —
// used to isolate retrieval quality (Figure 8) from generator
// behaviour.
func OracleProfile() *llm.Profile {
	comp := map[string]float64{}
	for _, c := range bench.Categories() {
		comp[c.String()] = 100
	}
	return &llm.Profile{
		ID: "oracle", DisplayName: "oracle generator",
		CompetencePct: comp, MediumFactor: 1, LowFactor: 1, Seed: 9,
	}
}
