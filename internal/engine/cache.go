package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"cachemind/internal/embed"
)

// evictionPolicy orders one answer-cache shard's resident keys and
// picks eviction victims — the seam the paper's replacement-policy
// suite plugs into (internal/policy.ForCache adapts any registered
// simulator policy to this method set; the method sets are identical,
// so a policy.CachePolicy satisfies evictionPolicy structurally).
//
// Contract — every call happens under the owning answerCache's mutex,
// so implementations need no locking of their own:
//
//   - OnHit(key) observes a lookup hit on a resident key (or an
//     overwrite of an existing entry) and refreshes its
//     recency/priority state.
//   - Victim(incoming) is called only when the cache is full and
//     incoming is absent: the policy returns the resident key to
//     evict, or bypass=true to request that incoming not be cached at
//     all. On bypass=false the cache removes the victim and then calls
//     OnInsert(incoming); the policy must stop tracking the victim
//     when Victim returns.
//   - OnInsert(key) observes the insertion of a new key, after any
//     eviction.
//
// Eviction policies only ever decide which entries stay resident —
// answers are pure functions of the cache key (see the package
// comment), so no policy choice can change a single answer byte, only
// hit/miss totals.
//
//cachemind:seam-hook
type evictionPolicy interface {
	Name() string
	OnHit(key string)
	OnInsert(key string)
	Victim(incoming string) (victim string, bypass bool)
}

// lruList is the native LRU evictionPolicy: a recency list over the
// resident keys, exactly the pre-bridge answer-cache semantics. It is
// the Config.CachePolicy default, kept native (rather than routed
// through the simulator adapter) so the default ask path carries no
// extra per-access state.
//
//cachemind:evictionpolicy
type lruList struct {
	ll *list.List // front = most recently used
	at map[string]*list.Element
}

func newLRUList() *lruList {
	return &lruList{ll: list.New(), at: map[string]*list.Element{}}
}

func (*lruList) Name() string { return "lru" }

func (p *lruList) OnHit(key string) {
	if el, ok := p.at[key]; ok {
		p.ll.MoveToFront(el)
	}
}

// OnHitBytes is OnHit for a key still in its pooled scratch bytes —
// the map probe compiles to a zero-copy lookup, so the default
// policy's hit path allocates nothing (see bytesHitter).
//
//cachemind:noalloc
func (p *lruList) OnHitBytes(key []byte) {
	if el, ok := p.at[string(key)]; ok {
		p.ll.MoveToFront(el)
	}
}

func (p *lruList) OnInsert(key string) {
	p.at[key] = p.ll.PushFront(key)
}

// OnInsertPrefetch inserts key at the midpoint of the recency list —
// the probationary position of a segmented LRU: a speculative prefetch
// fill never displaces the proven-hot front half, but survives about
// half a capacity's worth of demand churn, long enough to reach the
// session turn it was predicted for, before aging out un-promoted. The
// midpoint walk is O(len/2), paid only on background prefetch fills;
// the demand path never runs it (see prefetchInserter).
func (p *lruList) OnInsertPrefetch(key string) {
	el := p.ll.Back()
	for i := p.ll.Len() / 2; i > 0 && el != nil; i-- {
		el = el.Prev()
	}
	if el == nil {
		p.at[key] = p.ll.PushFront(key)
		return
	}
	p.at[key] = p.ll.InsertAfter(key, el)
}

func (p *lruList) Victim(string) (string, bool) {
	oldest := p.ll.Back()
	if oldest == nil {
		// Unreachable under the contract (Victim runs only on a full
		// cache); bypassing is the safe refusal.
		return "", true
	}
	key := p.ll.Remove(oldest).(string)
	delete(p.at, key)
	return key, false
}

// VictimForPrefetch evicts for a speculative fill exactly as for a
// demand fill: the LRU tail is the probationary segment's oldest entry
// either way, and the probation itself is OnInsertPrefetch's midpoint
// insertion — the victim side needs no extra caution. (The lockstep
// lint requires every hook explicitly; behavior is identical to the
// previous implicit Victim fallback.)
func (p *lruList) VictimForPrefetch(incoming string) (string, bool) {
	return p.Victim(incoming)
}

// answerCache is one shard of the bounded answer cache: a capacity-
// bounded key→Answer map whose residency is ordered by an
// evictionPolicy. Keys are the full (retriever, model, question)
// triple rendered by cacheKey, so an engine swap of retriever or
// backend can never serve a stale entry even if a cache were shared.
// All methods are safe for concurrent use.
//
// When the engine's semantic tier is enabled, idx holds one question
// vector per resident entry (same key) — the shard's slice of the
// nearest-neighbor search space. It moves in lockstep with the entry
// map under the same mutex: an insert that lands adds the vector, an
// eviction (any policy) or replacement removes or replaces it, and a
// Victim bypass adds nothing. idx.Len() == len(entries) is an
// invariant the semantic test suite pins for every registered policy.
//
// The hit/miss counters are deliberately not advanced by touch/peek:
// cachedAsk records exactly one hit or miss per answered ask based on
// how it was ultimately served (direct hit, semantic serve, coalesced
// single-flight follower, or a pipeline run), so the totals track
// answered cache-routed asks — not raw map probes, which would
// double-count single-flight retries. Hits are split by serving tier
// (exact vs semantic); a shard's semantic counter advances on the
// shard the *query* hashed to, matching Response.Shard, even when the
// served neighbor resides elsewhere.
// bytesHitter is the optional allocation-free half of evictionPolicy:
// a policy that can observe a hit from the key's pooled scratch bytes
// without forcing the caller to materialize a heap string. The native
// LRU implements it; adapter-backed policies fall back to OnHit with a
// converted key (one allocation per hit, off the default path).
//
//cachemind:seam-hook
type bytesHitter interface {
	OnHitBytes(key []byte)
}

// prefetchInserter is the optional low-priority half of evictionPolicy:
// a policy that wants to see speculative prefetch fills as a distinct
// insertion class (exactly the distinction SHiP/RRIP draw between
// demand and prefetch fills in the simulator) implements it; the cache
// falls back to plain OnInsert otherwise. The native LRU implements it
// by inserting at the recency list's midpoint (segmented-LRU
// probation); internal/policy's adapter implements it by setting
// sim.AccessInfo.Prefetch on the fill.
//
//cachemind:seam-hook
type prefetchInserter interface {
	OnInsertPrefetch(key string)
}

// prefetchVictimer is prefetchInserter's eviction-side twin: the
// victim choice for a prefetch fill, so bypass-capable policies can
// refuse speculative insertions more aggressively than demand ones.
// Falls back to plain Victim.
//
//cachemind:seam-hook
type prefetchVictimer interface {
	VictimForPrefetch(incoming string) (victim string, bypass bool)
}

type answerCache struct {
	mu  sync.Mutex
	cap int
	pol evictionPolicy
	// polBytes is pol's allocation-free hit path when it implements
	// bytesHitter (resolved once at construction), nil otherwise.
	polBytes bytesHitter
	entries  map[string]Answer
	idx      *embed.Index // nil unless the semantic tier is enabled

	// prefetched marks resident entries that were inserted by a
	// speculative prefetch fill and have not yet served a demand ask
	// (guarded by mu; nil until the first prefetch insert, so engines
	// without prefetching pay nothing). The bit is cleared — and covered
	// advanced — on the entry's first demand serve; an entry evicted or
	// bypassed with the bit still set advances wasted instead.
	prefetched map[string]struct{}

	exactHits    atomic.Uint64
	semanticHits atomic.Uint64
	misses       atomic.Uint64
	bypasses     atomic.Uint64
	covered      atomic.Uint64
	wasted       atomic.Uint64
}

// newAnswerCache creates a cache bounded to capacity entries (minimum
// 1) whose eviction order is decided by pol. With semantic true the
// shard also maintains the question-vector index the semantic tier
// searches.
func newAnswerCache(capacity int, pol evictionPolicy, semantic bool) *answerCache {
	if capacity < 1 {
		capacity = 1
	}
	c := &answerCache{
		cap:     capacity,
		pol:     pol,
		entries: map[string]Answer{},
	}
	if bh, ok := pol.(bytesHitter); ok {
		c.polBytes = bh
	}
	if semantic {
		c.idx = embed.NewIndex()
	}
	return c
}

// touch returns the cached answer for the key bytes and refreshes its
// recency/priority state via the policy. The key arrives as the ask's
// pooled scratch bytes: the entry probe is a zero-copy map lookup, and
// a bytesHitter policy (the default LRU) observes the hit without a
// string materialization, so an exact hit allocates nothing. It does
// not count hits or misses — see the answerCache comment.
//
//cachemind:noalloc
func (c *answerCache) touch(key []byte) (Answer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ans, ok := c.entries[string(key)]
	if !ok {
		return Answer{}, false
	}
	if c.prefetched != nil {
		// First demand touch of a prefetched entry: the prefetch covered
		// a would-be miss. The membership probe is a zero-copy lookup;
		// the delete below materializes a string, but runs at most once
		// per prefetched entry ever, so the steady-state hit path stays
		// allocation-free.
		if _, pf := c.prefetched[string(key)]; pf {
			//cachemind:allow-alloc at most once per prefetched entry ever (see comment above)
			delete(c.prefetched, string(key))
			c.covered.Add(1)
		}
	}
	if c.polBytes != nil {
		c.polBytes.OnHitBytes(key)
	} else {
		//cachemind:allow-alloc non-bytesHitter policies are off the default path
		c.pol.OnHit(string(key))
	}
	return ans, true
}

// peek returns the cached answer without touching recency — used when
// a single-flight retry re-checks the cache after a leader abort, so
// one Ask never perturbs the policy state more than once.
func (c *answerCache) peek(key string) (Answer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ans, ok := c.entries[key]
	return ans, ok
}

// put stores the answer under key. On a full cache the policy picks
// the victim; a policy may instead decline the insertion entirely
// (bypass), leaving the resident set untouched — sound because answers
// are recomputable pure functions of the key. vec is the question's
// embedding for the semantic index; it must be non-nil whenever the
// shard carries an index (cachedAsk computes it on every miss when the
// tier is enabled) and is ignored otherwise. An evicted victim leaves
// the index in the same critical section it leaves the entry map, for
// every policy — the lockstep the semantic tier's soundness rests on
// (a dangling vector would serve an answer that no longer exists).
func (c *answerCache) put(key string, ans Answer, vec *embed.Vector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.entries[key] = ans
		c.pol.OnHit(key) // refresh, exactly as the old MoveToFront did
		// A demand overwrite of a still-unserved prefetched entry (a
		// demand leader raced the fill's publish): the demand ask ran
		// its own pipeline, so the speculative work served nobody.
		if _, pf := c.prefetched[key]; pf {
			delete(c.prefetched, key)
			c.wasted.Add(1)
		}
		return // idx already carries this key's vector
	}
	if len(c.entries) >= c.cap {
		victim, bypass := c.pol.Victim(key)
		if bypass {
			c.bypasses.Add(1)
			return
		}
		c.evict(victim)
	}
	c.entries[key] = ans
	c.pol.OnInsert(key)
	if c.idx != nil && vec != nil {
		c.idx.AddVec(key, *vec)
	}
}

// evict removes victim from the entry map, the semantic index and the
// prefetched set (counting a never-served prefetch as wasted). Caller
// holds c.mu; the policy has already stopped tracking the victim.
func (c *answerCache) evict(victim string) {
	delete(c.entries, victim)
	if c.idx != nil {
		c.idx.Remove(victim)
	}
	if _, pf := c.prefetched[victim]; pf {
		delete(c.prefetched, victim)
		c.wasted.Add(1)
	}
}

// putPrefetch stores a speculative prefetch fill under key, reporting
// whether it landed. Unlike put it never refreshes an existing entry
// (a resident key means the fill was redundant), routes the victim
// choice and insertion through the policy's prefetch-aware methods
// when it has them (prefetchVictimer/prefetchInserter — the native LRU
// inserts at the LRU end; the simulator adapter marks
// sim.AccessInfo.Prefetch), and marks the entry in the prefetched set
// so its first demand serve counts covered. A policy bypass counts
// wasted, not bypasses: bypasses tracks declined demand insertions.
func (c *answerCache) putPrefetch(key string, ans Answer, vec *embed.Vector) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	if len(c.entries) >= c.cap {
		var victim string
		var bypass bool
		if pv, ok := c.pol.(prefetchVictimer); ok {
			victim, bypass = pv.VictimForPrefetch(key)
		} else {
			victim, bypass = c.pol.Victim(key)
		}
		if bypass {
			c.wasted.Add(1)
			return true // counted here; the fill does not double-count
		}
		c.evict(victim)
	}
	c.entries[key] = ans
	if pi, ok := c.pol.(prefetchInserter); ok {
		pi.OnInsertPrefetch(key)
	} else {
		c.pol.OnInsert(key)
	}
	if c.prefetched == nil {
		c.prefetched = map[string]struct{}{}
	}
	c.prefetched[key] = struct{}{}
	if c.idx != nil && vec != nil {
		c.idx.AddVec(key, *vec)
	}
	return true
}

// coverFlight records that a demand ask was served by coalescing onto
// an in-flight (or just-published) prefetch fill for key: the entry's
// covered credit is claimed exactly once, here or at its first demand
// touch, whichever runs first.
func (c *answerCache) coverFlight(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, pf := c.prefetched[key]; pf {
		delete(c.prefetched, key)
		c.covered.Add(1)
	}
}

// bestSimilar returns this shard's nearest cached neighbor of qv at or
// above min, with the stored answer snapshotted under the shard lock —
// so the (key, answer) pair is consistent even if the entry is evicted
// a microsecond later. Ties break by key (via Index.BestVec), keeping
// the winner independent of insertion order.
func (c *answerCache) bestSimilar(qv embed.Vector, min float64) (key string, ans Answer, score float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.idx == nil {
		return "", Answer{}, 0, false
	}
	m, found := c.idx.BestVec(qv)
	if !found || m.Score < min {
		return "", Answer{}, 0, false
	}
	// Lockstep invariant: every indexed key is resident.
	return m.ID, c.entries[m.ID], m.Score, true
}

// refresh bumps key's recency/priority state if it is still resident —
// the semantic tier's OnHit on the served neighbor. A concurrent
// eviction between the similarity scan and this call is tolerated (the
// answer bytes were snapshotted under the scan's lock); refreshing a
// ghost would violate the policy contract, so absence is a no-op.
func (c *answerCache) refresh(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.pol.OnHit(key)
	}
}

// counters returns (exact hits, semantic hits, misses, bypasses, live
// entries).
func (c *answerCache) counters() (exact, semantic, misses, bypasses uint64, entries int) {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return c.exactHits.Load(), c.semanticHits.Load(), c.misses.Load(), c.bypasses.Load(), n
}

// prefetchCounters returns (covered, wasted) — the demand-side fate of
// this shard's prefetched entries.
func (c *answerCache) prefetchCounters() (covered, wasted uint64) {
	return c.covered.Load(), c.wasted.Load()
}
