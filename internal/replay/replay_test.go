package replay

import (
	"testing"
	"testing/quick"

	"cachemind/internal/policy"
	"cachemind/internal/sim"
	"cachemind/internal/trace"
	"cachemind/internal/workload"
)

func llcCfg() sim.Config {
	return sim.Config{Name: "LLC", Sets: 128, Ways: 8, Latency: 26}
}

func runLRU(t *testing.T, accs []trace.Access, opt Options) Result {
	t.Helper()
	p, err := policy.New("lru", llcCfg(), policy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Run(accs, llcCfg(), p, opt)
}

func TestRecordPerAccess(t *testing.T) {
	accs := workload.Astar.Generate(5000, 1)
	res := runLRU(t, accs, Options{})
	if len(res.Records) != len(accs) {
		t.Fatalf("records = %d, want %d", len(res.Records), len(accs))
	}
	if res.Summary.Accesses != len(accs) {
		t.Errorf("summary accesses = %d", res.Summary.Accesses)
	}
	if res.Summary.Hits+res.Summary.Misses != res.Summary.Accesses {
		t.Error("hits+misses != accesses")
	}
	if res.Summary.ColdMisses+res.Summary.CapacityMisses+res.Summary.ConflictMisses != res.Summary.Misses {
		t.Error("miss taxonomy does not partition misses")
	}
}

func TestRecordFieldsConsistent(t *testing.T) {
	accs := workload.MCF.Generate(8000, 2)
	res := runLRU(t, accs, Options{})
	for i, r := range res.Records {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.PC != accs[i].PC || r.Addr != accs[i].LineAddr() {
			t.Fatalf("record %d PC/addr mismatch", i)
		}
		if r.Hit && r.MissType != trace.NotMiss {
			t.Fatalf("record %d: hit with miss type %v", i, r.MissType)
		}
		if !r.Hit && r.MissType == trace.NotMiss {
			t.Fatalf("record %d: miss without taxonomy", i)
		}
		if r.EvictedAddr != 0 && r.Hit {
			t.Fatalf("record %d: hit with eviction", i)
		}
	}
}

func TestSnapshotSampling(t *testing.T) {
	accs := workload.LBM.Generate(3000, 3)
	res := runLRU(t, accs, Options{SnapshotEvery: 100, HistoryLen: 4})
	withSnap, nonEmpty := 0, 0
	for i, r := range res.Records {
		if i%100 == 0 {
			withSnap++
			if len(r.ResidentLines) > 0 {
				nonEmpty++
			}
			if len(r.RecentHistory) > 4 {
				t.Errorf("record %d: history longer than configured", i)
			}
		} else if r.ResidentLines != nil || r.RecentHistory != nil {
			t.Errorf("record %d: unexpected snapshot", i)
		}
	}
	if withSnap != 30 {
		t.Errorf("snapshots = %d, want 30", withSnap)
	}
	if nonEmpty == 0 {
		t.Error("no sampled record captured resident lines")
	}
}

func TestEvictionScoresCaptured(t *testing.T) {
	accs := workload.Astar.Generate(4000, 4)
	res := runLRU(t, accs, Options{SnapshotEvery: 64})
	found := false
	for i, r := range res.Records {
		if i > 1000 && i%64 == 0 && len(r.EvictionScores) > 0 {
			found = true
			if len(r.EvictionScores) != llcCfg().Ways {
				t.Errorf("record %d: %d scores, want %d", i, len(r.EvictionScores), llcCfg().Ways)
			}
			break
		}
	}
	if !found {
		t.Error("no eviction scores captured")
	}
}

// Under Belady, no eviction is ever "wrong" (the victim's next use is
// always the farthest), so the wrong-eviction counter must be 0; LRU on
// a thrashing workload must have many.
func TestWrongEvictionsBeladyVsLRU(t *testing.T) {
	accs := workload.LBM.Generate(30000, 5)
	oracle := trace.NextUseOracle(accs)
	bp, err := policy.New("belady", llcCfg(), policy.Options{Oracle: oracle})
	if err != nil {
		t.Fatal(err)
	}
	bres := Run(accs, llcCfg(), bp, Options{})
	if bres.Summary.WrongEvictions != 0 {
		t.Errorf("Belady wrong evictions = %d, want 0", bres.Summary.WrongEvictions)
	}
	lres := runLRU(t, accs, Options{})
	if lres.Summary.WrongEvictions == 0 {
		t.Error("LRU on thrashing lbm should have wrong evictions")
	}
	if lres.Summary.Hits > bres.Summary.Hits {
		t.Error("LRU cannot beat Belady")
	}
}

func TestEvictedReuseDistancePositive(t *testing.T) {
	accs := workload.Astar.Generate(10000, 6)
	res := runLRU(t, accs, Options{})
	for i, r := range res.Records {
		if r.EvictedAddr == 0 {
			continue
		}
		if r.EvictedReuseDist != trace.NoReuse && r.EvictedReuseDist <= 0 {
			t.Fatalf("record %d: non-positive evicted reuse distance %d", i, r.EvictedReuseDist)
		}
	}
}

func TestSummaryRates(t *testing.T) {
	accs := workload.MCF.Generate(10000, 7)
	res := runLRU(t, accs, Options{})
	if hr, mr := res.Summary.HitRate(), res.Summary.MissRate(); hr+mr < 0.999 || hr+mr > 1.001 {
		t.Errorf("hit rate %v + miss rate %v != 1", hr, mr)
	}
	// mcf is the paper's highest-miss-rate workload: expect a majority
	// of misses at this small geometry.
	if res.Summary.MissRate() < 0.5 {
		t.Errorf("mcf miss rate = %.2f, expected streaming-dominated misses", res.Summary.MissRate())
	}
}

func TestClassifyMiss(t *testing.T) {
	if classifyMiss(-1, 100) != trace.ColdMiss {
		t.Error("first touch should be cold")
	}
	if classifyMiss(101, 100) != trace.CapacityMiss {
		t.Error("beyond-capacity recency should be capacity")
	}
	if classifyMiss(50, 100) != trace.ConflictMiss {
		t.Error("within-capacity recency should be conflict")
	}
}

// Property: evicted reuse distances agree with a brute-force scan of the
// future access stream.
func TestEvictedReuseMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		accs := workload.Astar.Generate(1500, seed)
		res := runLRU(t, accs, Options{})
		for i, r := range res.Records {
			if r.EvictedAddr == 0 {
				continue
			}
			want := int64(trace.NoReuse)
			for j := i + 1; j < len(accs); j++ {
				if accs[j].LineAddr() == r.EvictedAddr {
					want = int64(j - i)
					break
				}
			}
			if r.EvictedReuseDist != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

// Property: replay is deterministic.
func TestReplayDeterministicProperty(t *testing.T) {
	accs := workload.LBM.Generate(4000, 12)
	a := runLRU(t, accs, Options{})
	b := runLRU(t, accs, Options{})
	if a.Summary != b.Summary {
		t.Errorf("summaries differ: %+v vs %+v", a.Summary, b.Summary)
	}
}
