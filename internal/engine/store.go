package engine

import (
	"os"

	"cachemind/internal/db"
	"cachemind/internal/sim"
)

// DefaultLLC is the store geometry the front-ends build when no
// pre-built database is supplied: capacity pressure at moderate trace
// lengths, so policies diverge without Table 2-scale traces.
func DefaultLLC() sim.Config {
	return sim.Config{Name: "LLC", Sets: 256, Ways: 8, Latency: 26, MSHRs: 64}
}

// OpenStore loads a tracegen store from path, or — when path is empty —
// builds the default in-memory database. Shared by cmd/cachemind and
// cmd/cachemindd so the REPL and the daemon can never diverge on how
// their stores come to exist.
func OpenStore(path string, accesses int, seed int64, parallelism int) (*db.Store, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return db.Load(f)
	}
	return db.Build(db.BuildConfig{
		AccessesPerTrace: accesses,
		Seed:             seed,
		LLC:              DefaultLLC(),
		Parallelism:      parallelism,
	})
}
