package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer enforces the PR-4 context contract: cancellation
// flows from the HTTP handler through every stage of the ask path.
// A function that receives a context.Context parameter is a conduit —
// minting a fresh root with context.Background() or context.TODO()
// inside it severs the caller's deadline and cancellation, which is
// exactly the bug class the request-timeout and shedding machinery
// exists to prevent.
//
// The rule is deliberately narrow: functions WITHOUT a ctx parameter
// (main, tests, background daemons that own their lifecycle) may mint
// roots freely. Documented detach points inside conduit functions —
// e.g. the engine's nil-ctx compatibility fallback — carry a
// //cachemind:allow-ctx <reason> waiver on or above the line.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag context.Background()/TODO() inside functions that already receive a context.Context",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !funcHasCtxParam(pass.Info, fd) {
				continue
			}
			checkCtxFlowFunc(pass, f, fd)
		}
	}
	return nil
}

// funcHasCtxParam reports whether the declaration takes a
// context.Context (directly; an embedded *http.Request also counts,
// since r.Context() is available to thread).
func funcHasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		if isContextType(tv.Type) || isHTTPRequestPtr(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

func checkCtxFlowFunc(pass *Pass, f *ast.File, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// Closures own their own lifecycle decisions only if they are
		// goroutine bodies; for simplicity (and because every current
		// detach point is documented with a waiver) we still scan them —
		// a deliberate detach inside a spawned worker gets a waiver
		// comment, which doubles as documentation.
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := calleePkgFunc(pass.Info, call)
		if !ok || pkg != "context" || (name != "Background" && name != "TODO") {
			return true
		}
		if pass.waived(f, call.Pos(), dirAllowCtx) {
			return true
		}
		pass.Reportf(call.Pos(), "context.%s() inside %s, which already receives a context: thread the caller's ctx (or waive a documented detach with //cachemind:allow-ctx)", name, funcDisplayName(fd))
		return true
	})
}
