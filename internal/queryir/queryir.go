// Package queryir defines the typed retrieval-query representation and
// its executor. The paper's Ranger retriever has GPT-4o emit Python that
// slices the trace database; offline, CacheMind's semantic parser
// (internal/nlu) compiles natural language into these declarative query
// values instead, and this package executes them against the store — the
// same "generate a retrieval program, run it, return grounded strings"
// loop with a verifiable, sandboxed program representation.
package queryir

import (
	"context"
	"fmt"
	"sort"

	"cachemind/internal/db"
	"cachemind/internal/stats"
	"cachemind/internal/trace"
)

// AggKind enumerates the aggregations a query can request.
type AggKind int

const (
	// AggRows returns matching rows without aggregation.
	AggRows AggKind = iota
	AggCount
	AggHitCount
	AggMissCount
	AggHitRate  // percent
	AggMissRate // percent
	AggMean     // over Field
	AggStd      // over Field
	AggSum      // over Field
	AggMin      // over Field
	AggMax      // over Field
	AggMedian   // over Field
	// AggDistinct lists distinct values of GroupBy ("pc" or "set").
	AggDistinct
)

var aggNames = map[AggKind]string{
	AggRows: "rows", AggCount: "count", AggHitCount: "hit_count",
	AggMissCount: "miss_count", AggHitRate: "hit_rate", AggMissRate: "miss_rate",
	AggMean: "mean", AggStd: "std", AggSum: "sum", AggMin: "min", AggMax: "max",
	AggMedian:   "median",
	AggDistinct: "distinct",
}

// String returns the aggregation's name.
func (a AggKind) String() string {
	if n, ok := aggNames[a]; ok {
		return n
	}
	return fmt.Sprintf("AggKind(%d)", int(a))
}

// needsField reports whether the aggregation reads a numeric column.
func (a AggKind) needsField() bool {
	switch a {
	case AggMean, AggStd, AggSum, AggMin, AggMax, AggMedian:
		return true
	}
	return false
}

// Query is one declarative retrieval request against a single
// (workload, policy) frame.
type Query struct {
	Workload string
	Policy   string

	// Optional symbolic filters.
	PC   *uint64
	Addr *uint64 // line-aligned automatically
	Set  *int
	Hit  *bool // filter to hits (true) or misses (false)

	// Agg selects the aggregation; Field names the numeric column for
	// mean/std/sum/min/max.
	Agg   AggKind
	Field string

	// GroupBy ("pc" or "set") computes the aggregation per group, or
	// enumerates distinct keys for AggDistinct.
	GroupBy string

	// SortDesc orders grouped output by value descending (default is
	// key ascending); Limit truncates grouped or row output (0 = all).
	SortDesc bool
	Limit    int
}

// ResultKind discriminates Result payloads.
type ResultKind int

const (
	KindScalar ResultKind = iota
	KindRows
	KindGroups
	KindKeys
)

// GroupRow is one group's aggregated value.
type GroupRow struct {
	Key   uint64 // PC or set index
	Value float64
	Count int
}

// Result is an executed query's payload.
type Result struct {
	Kind       ResultKind
	Scalar     float64
	MatchCount int
	// Rows holds matched record indices into the frame (capped by
	// Query.Limit when set).
	Rows []int
	// Groups holds per-group aggregates for GroupBy queries.
	Groups []GroupRow
	// Keys holds distinct PCs or set indices for AggDistinct.
	Keys []uint64
	// Frame is the frame the query ran against.
	Frame *db.Frame
}

// PCRef formats a key as the hex string used in answers.
func PCRef(pc uint64) string { return fmt.Sprintf("0x%x", pc) }

// Execute runs q against the store. Errors carry enough context for the
// generator to reject false premises (unknown workload/policy, PC absent
// from the selected trace). ctx is the request context: a query that
// starts after cancellation returns ctx's error immediately, which is
// the db query path's cancellation checkpoint — retrievers fan a
// question out into many Execute calls, so a canceled request stops
// between queries instead of scanning every remaining frame.
func Execute(ctx context.Context, store *db.Store, q Query) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	frame, ok := store.Frame(q.Workload, q.Policy)
	if !ok {
		return Result{}, fmt.Errorf("queryir: no trace for workload %q under policy %q", q.Workload, q.Policy)
	}
	if q.Agg.needsField() && q.Field == "" {
		return Result{}, fmt.Errorf("queryir: aggregation %v requires a field", q.Agg)
	}
	if q.PC != nil && !frame.HasPC(*q.PC) {
		return Result{}, &PCNotFoundError{PC: *q.PC, Workload: q.Workload, Policy: q.Policy, Store: store}
	}

	rows := candidateRows(frame, q)
	matched := make([]int, 0, len(rows))
	for _, i := range rows {
		if matches(frame, q, i) {
			matched = append(matched, i)
		}
	}
	if q.Addr != nil && len(matched) == 0 {
		return Result{}, &AddrNotFoundError{PC: q.PC, Addr: *q.Addr, Workload: q.Workload, Policy: q.Policy}
	}

	res := Result{MatchCount: len(matched), Frame: frame}
	if q.GroupBy != "" {
		return executeGrouped(frame, q, matched, res)
	}
	return executeFlat(frame, q, matched, res)
}

// PCNotFoundError signals a false premise: the PC is absent from the
// requested trace. It records which workloads do contain the PC so the
// generator can explain the rejection.
type PCNotFoundError struct {
	PC       uint64
	Workload string
	Policy   string
	Store    *db.Store
}

func (e *PCNotFoundError) Error() string {
	where := e.Store.WorkloadsWithPC(e.PC)
	if len(where) == 0 {
		return fmt.Sprintf("PC %s does not appear in any trace", PCRef(e.PC))
	}
	return fmt.Sprintf("PC %s does not appear in workload %s (it appears in %v)", PCRef(e.PC), e.Workload, where)
}

// AddrNotFoundError signals that the requested (PC, address) pair never
// occurs in the trace.
type AddrNotFoundError struct {
	PC       *uint64
	Addr     uint64
	Workload string
	Policy   string
}

func (e *AddrNotFoundError) Error() string {
	if e.PC != nil {
		return fmt.Sprintf("PC %s never accesses address 0x%x in workload %s under %s",
			PCRef(*e.PC), e.Addr, e.Workload, e.Policy)
	}
	return fmt.Sprintf("address 0x%x is never accessed in workload %s under %s", e.Addr, e.Workload, e.Policy)
}

// candidateRows picks the narrowest index for the query's filters.
func candidateRows(f *db.Frame, q Query) []int {
	toInts := func(xs []int32) []int {
		out := make([]int, len(xs))
		for i, x := range xs {
			out[i] = int(x)
		}
		return out
	}
	switch {
	case q.PC != nil && q.Addr != nil:
		return toInts(f.RowsForPCAddr(*q.PC, *q.Addr))
	case q.PC != nil:
		return toInts(f.RowsForPC(*q.PC))
	case q.Set != nil:
		return toInts(f.RowsForSet(*q.Set))
	default:
		out := make([]int, f.Len())
		for i := range out {
			out[i] = i
		}
		return out
	}
}

func matches(f *db.Frame, q Query, i int) bool {
	r := f.Record(i)
	if q.PC != nil && r.PC != *q.PC {
		return false
	}
	if q.Addr != nil && r.Addr != *q.Addr&^uint64(trace.LineSize-1) {
		return false
	}
	if q.Set != nil && r.Set != *q.Set {
		return false
	}
	if q.Hit != nil && r.Hit != *q.Hit {
		return false
	}
	return true
}

func executeFlat(f *db.Frame, q Query, matched []int, res Result) (Result, error) {
	switch q.Agg {
	case AggRows:
		res.Kind = KindRows
		res.Rows = matched
		if q.Limit > 0 && len(res.Rows) > q.Limit {
			res.Rows = res.Rows[:q.Limit]
		}
		return res, nil
	case AggCount:
		res.Kind = KindScalar
		res.Scalar = float64(len(matched))
		return res, nil
	case AggHitCount, AggMissCount, AggHitRate, AggMissRate:
		hits := 0
		for _, i := range matched {
			if f.Record(i).Hit {
				hits++
			}
		}
		res.Kind = KindScalar
		switch q.Agg {
		case AggHitCount:
			res.Scalar = float64(hits)
		case AggMissCount:
			res.Scalar = float64(len(matched) - hits)
		case AggHitRate:
			res.Scalar = stats.Pct(hits, len(matched))
		default:
			res.Scalar = stats.Pct(len(matched)-hits, len(matched))
		}
		return res, nil
	case AggMean, AggStd, AggSum, AggMin, AggMax, AggMedian:
		vals := numericColumn(f, q.Field, matched)
		res.Kind = KindScalar
		switch q.Agg {
		case AggMean:
			res.Scalar = stats.Mean(vals)
		case AggStd:
			res.Scalar = stats.StdDev(vals)
		case AggSum:
			for _, v := range vals {
				res.Scalar += v
			}
		case AggMin:
			res.Scalar, _ = stats.MinMax(vals)
		case AggMedian:
			res.Scalar = stats.Median(vals)
		default:
			_, res.Scalar = stats.MinMax(vals)
		}
		return res, nil
	case AggDistinct:
		return Result{}, fmt.Errorf("queryir: distinct requires GroupBy (\"pc\" or \"set\")")
	default:
		return Result{}, fmt.Errorf("queryir: unsupported aggregation %v", q.Agg)
	}
}

func executeGrouped(f *db.Frame, q Query, matched []int, res Result) (Result, error) {
	key := func(i int) uint64 {
		r := f.Record(i)
		if q.GroupBy == "set" {
			return uint64(r.Set)
		}
		return r.PC
	}
	if q.GroupBy != "pc" && q.GroupBy != "set" {
		return Result{}, fmt.Errorf("queryir: unknown GroupBy %q", q.GroupBy)
	}

	if q.Agg == AggDistinct {
		seen := map[uint64]bool{}
		for _, i := range matched {
			seen[key(i)] = true
		}
		keys := make([]uint64, 0, len(seen))
		for k := range seen {
			keys = append(keys, k)
		}
		sortUint64s(keys)
		if q.Limit > 0 && len(keys) > q.Limit {
			keys = keys[:q.Limit]
		}
		res.Kind = KindKeys
		res.Keys = keys
		return res, nil
	}

	groups := map[uint64][]int{}
	for _, i := range matched {
		groups[key(i)] = append(groups[key(i)], i)
	}
	out := make([]GroupRow, 0, len(groups))
	for k, rows := range groups {
		sub := q
		sub.GroupBy = ""
		r, err := executeFlat(f, sub, rows, Result{MatchCount: len(rows), Frame: f})
		if err != nil {
			return Result{}, err
		}
		out = append(out, GroupRow{Key: k, Value: r.Scalar, Count: len(rows)})
	}
	sortGroups(out, q.SortDesc)
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	res.Kind = KindGroups
	res.Groups = out
	return res, nil
}

func numericColumn(f *db.Frame, field string, rows []int) []float64 {
	vals := make([]float64, 0, len(rows))
	for _, i := range rows {
		if v, ok := f.NumericValue(field, i); ok {
			vals = append(vals, v)
		}
	}
	return vals
}

func sortUint64s(xs []uint64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func sortGroups(gs []GroupRow, byValueDesc bool) {
	sort.Slice(gs, func(i, j int) bool {
		if byValueDesc && gs[i].Value != gs[j].Value {
			return gs[i].Value > gs[j].Value
		}
		return gs[i].Key < gs[j].Key
	})
}
