package engine_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"cachemind/internal/engine"
	"cachemind/internal/retriever"
)

// TestCachePolicyRegistry: the acceptance-criteria names resolve, the
// offline-only policies and unknown names are rejected at Config
// validation, and CachePolicies lists every accepted name.
func TestCachePolicyRegistry(t *testing.T) {
	names := engine.CachePolicies()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"lru", "srrip", "hawkeye"} {
		if !have[want] {
			t.Fatalf("CachePolicies() missing %q: %v", want, names)
		}
	}
	// Every listed name — plus the "rrip" alias the acceptance criteria
	// name (accepted but unlisted, so sweeps don't run srrip twice) —
	// builds an engine.
	for _, n := range append(names, "rrip") {
		if e := newEngine(t, engine.Config{CachePolicy: n, CacheSize: 8, Shards: 1}); e.CachePolicyName() != n {
			t.Fatalf("CachePolicyName() = %q, want %q", e.CachePolicyName(), n)
		}
	}
	for _, bad := range []string{"belady", "parrot", "optimal-prime"} {
		if _, err := engine.New(engine.Config{Store: testStore(t), CachePolicy: bad}); err == nil {
			t.Fatalf("CachePolicy %q accepted", bad)
		}
	}
	// An invalid policy fails fast even with caching disabled.
	if _, err := engine.New(engine.Config{Store: testStore(t), CachePolicy: "nope", CacheSize: -1}); err == nil {
		t.Fatal("invalid policy accepted when caching is disabled")
	}
}

// TestPolicyAnswersByteIdentical is the policy-bridge determinism
// contract: every registered policy replays the fixed ask sequence
// with answers byte-identical to the LRU engine's — eviction policies
// decide residency, never bytes — while hit+miss totals always balance
// against the answered-ask count (only the hit/miss split may differ
// between policies).
func TestPolicyAnswersByteIdentical(t *testing.T) {
	seq := askSequence()
	run := func(policyName string) []string {
		// A small cache forces real evictions so every policy's Victim
		// path actually runs.
		e := newEngine(t, engine.Config{CachePolicy: policyName, CacheSize: 4, Shards: 1})
		answers := make([]string, len(seq))
		for i, item := range seq {
			resp, err := e.Ask(context.Background(), item)
			if err != nil {
				t.Fatalf("%s ask %d: %v", policyName, i, err)
			}
			answers[i] = resp.Text
		}
		st := e.Stats()
		if st.CachePolicy != policyName {
			t.Fatalf("Stats.CachePolicy = %q, want %q", st.CachePolicy, policyName)
		}
		if got := st.CacheHits + st.CacheMisses; got != uint64(len(seq)) {
			t.Fatalf("%s: hits(%d)+misses(%d) = %d, want %d answered asks",
				policyName, st.CacheHits, st.CacheMisses, got, len(seq))
		}
		var perShard uint64
		for _, cs := range st.CacheShards {
			perShard += cs.Hits + cs.Misses
		}
		if perShard != st.CacheHits+st.CacheMisses {
			t.Fatalf("%s: per-shard totals (%d) disagree with the global counters (%d)",
				policyName, perShard, st.CacheHits+st.CacheMisses)
		}
		return answers
	}

	ref := run("lru")
	for _, name := range engine.CachePolicies() {
		if name == "lru" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			got := run(name)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("answer %d diverges from the LRU reference under %s:\nlru: %q\n%s: %q",
						i, name, ref[i], name, got[i])
				}
			}
		})
	}
}

// TestPolicyShardedHammer runs the 16-goroutine race hammer at shards
// 1 and 8 for every registered policy — the policy adapters sit on the
// hottest lock in the engine, so each must survive -race under real
// concurrency with byte-identical answers.
func TestPolicyShardedHammer(t *testing.T) {
	for _, name := range engine.CachePolicies() {
		for _, shards := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				hammer(t, engine.Config{CachePolicy: name, Shards: shards, CacheSize: 4})
			})
		}
	}
}

// TestFollowerPeekCountsOnce pins the satellite-3 counter invariant
// under leader cancellation (run with -race in CI): when a
// single-flight leader aborts, each follower — whether it re-elects
// itself leader, coalesces on the new flight, or is served via
// answerCache.peek — lands in the hit/miss totals exactly once, so
// hits+misses equals the number of answered asks and the miss count is
// exactly the one pipeline run.
func TestFollowerPeekCountsOnce(t *testing.T) {
	gr := &gatedRetriever{inner: retriever.NewRanger(testStore(t)), release: make(chan struct{})}
	e := newEngine(t, engine.Config{CustomRetriever: gr, Shards: 1})
	q := questions[0]

	leaderCtx, leaderCancel := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := e.Ask(leaderCtx, engine.Request{SessionID: "leader", Question: q})
		leaderErr <- err
	}()
	for gr.started() < 1 {
		time.Sleep(time.Millisecond)
	}

	const followers = 8
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ask(e, fmt.Sprintf("f%d", i), q)
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
				return
			}
			if resp.Text == "" {
				t.Errorf("follower %d: empty answer", i)
			}
		}(i)
	}
	// Abort the leader while it holds the flight, wait for a follower
	// to re-elect itself leader, then let the new flight complete.
	leaderCancel()
	if err := <-leaderErr; engine.ErrorCode(err) != engine.CodeCanceled {
		t.Fatalf("leader error = %v, want canceled", err)
	}
	for gr.started() < 2 {
		time.Sleep(time.Millisecond)
	}
	close(gr.release)
	wg.Wait()

	st := e.Stats()
	// The canceled leader counts nothing; the 8 answered followers
	// count exactly once each — whether they ran the pipeline (miss) or
	// were served from the flight or via peek (hit). A second pipeline
	// run is possible in a narrow legitimate window (a follower that
	// missed before the new leader published and reached the flight
	// table after it retired), so assert the once-each invariant, not
	// an exact split.
	if got := st.CacheHits + st.CacheMisses; got != followers {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d (every answered follower counted exactly once)",
			st.CacheHits, st.CacheMisses, got, followers)
	}
	if st.CacheMisses < 1 {
		t.Fatalf("misses = %d, want at least the re-elected leader's pipeline run", st.CacheMisses)
	}
	if st.Canceled != 1 {
		t.Fatalf("canceled = %d, want 1 (the aborted leader)", st.Canceled)
	}
	// A late ask is a plain cache hit and keeps the ledger balanced.
	if resp := mustAsk(t, e, "late", q); !resp.Cached {
		t.Fatal("post-flight ask missed the cache")
	}
	if st := e.Stats(); st.CacheHits+st.CacheMisses != followers+1 {
		t.Fatalf("hits+misses = %d, want %d answered asks", st.CacheHits+st.CacheMisses, followers+1)
	}
}
