// Package noalloc is the cachemindlint noalloc fixture: hot returns
// mirror the engine's sanctioned zero-alloc idioms; each violating
// line carries a want expectation.
package noalloc

import (
	"errors"
	"fmt"
)

type scratch struct {
	key []byte
}

var table = map[string]int{}

// good mirrors the cached-ask idioms: pooled-buffer append, zero-copy
// map probe, zero-copy comparison, constant concatenation.
//
//cachemind:noalloc
func good(sc *scratch, prefix, question string) int {
	sc.key = append(append(sc.key[:0], prefix...), question...)
	if v, ok := table[string(sc.key)]; ok { // zero-copy map probe
		return v
	}
	if string(sc.key) == question { // zero-copy comparison
		return 1
	}
	const a = "x" + "y" // constant concatenation folds
	_ = a
	return 0
}

// waivedMiss shows the sanctioned escape hatch: a documented
// once-per-miss materialization.
//
//cachemind:noalloc
func waivedMiss(sc *scratch) string {
	//cachemind:allow-alloc key escapes into the cache entry exactly once per miss
	return string(sc.key)
}

// unannotated is free to allocate: the contract is opt-in.
func unannotated(n int) string {
	return fmt.Sprintf("%d", n)
}

//cachemind:noalloc
func badFmt(n int) string {
	return fmt.Sprintf("%d", n) // want `call to fmt.Sprintf allocates` `interface boxing`
}

//cachemind:noalloc
func badErrors(msg string) error {
	return errors.New(msg) // want `call to errors.New allocates`
}

//cachemind:noalloc
func badConversions(b []byte, s string) {
	_ = string(b) // want `string/\[\]byte conversion allocates`
	_ = []byte(s) // want `string/\[\]byte conversion allocates`
}

//cachemind:noalloc
func badMake() []int {
	return make([]int, 8) // want `make allocates`
}

//cachemind:noalloc
func badNew() *int {
	return new(int) // want `new allocates`
}

//cachemind:noalloc
func badLiterals() {
	_ = []int{1, 2}      // want `slice/map literal allocates`
	_ = map[string]int{} // want `slice/map literal allocates`
}

type box struct{ v int }

//cachemind:noalloc
func badHeapLit() *box {
	return &box{v: 1} // want `&composite-literal allocates`
}

//cachemind:noalloc
func badClosure() func() int {
	return func() int { return 1 } // want `function literal \(closure\) allocates`
}

//cachemind:noalloc
func badEscape() *int {
	v := 42
	return &v // want `address of local "v" escapes`
}

//cachemind:noalloc
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//cachemind:noalloc
func badFreshAppend(x int) []int {
	return append([]int{}, x) // want `append onto a fresh backing array allocates` `slice/map literal allocates`
}

type sink interface{ put(int) }

//cachemind:noalloc
func badBoxing(s sink, f func(any)) {
	f(struct{ x int }{x: 1}) // want `interface boxing of non-pointer value allocates`
}
