// Package retriever implements CacheMind's retrieval layer: Sieve
// (symbolic-semantic filtering, paper §3.2), Ranger (query generation
// and execution, paper §3.3), and the embedding-RAG baseline standing in
// for LlamaIndex (paper §6.2). All three produce a Context bundle the
// generator grounds its answer in, tagged with a quality grade that
// drives the paper's Figure 5 analysis.
package retriever

import (
	"context"
	"fmt"
	"strings"
	"time"

	"cachemind/internal/db"
	"cachemind/internal/llm"
	"cachemind/internal/nlu"
	"cachemind/internal/queryir"
)

// ExecutedQuery pairs a compiled query with its result or error.
type ExecutedQuery struct {
	Query  queryir.Query
	Result queryir.Result
	Err    error
}

// Context is one retrieval outcome.
type Context struct {
	Question string
	// Retriever is the producing retriever's name.
	Retriever string
	// Quality grades the evidence (drives Figure 5).
	Quality llm.Quality
	// Text is the assembled evidence bundle shown to the generator.
	Text string
	// Parsed carries the NLU output (zero value for the embedding
	// baseline, which does no parsing).
	Parsed nlu.Parsed
	// Executed holds every query run and its outcome.
	Executed []ExecutedQuery
	// Err is a retrieval-level failure (nothing usable found).
	Err error
	// Elapsed is the wall-clock retrieval time (Figure 9's latency
	// comparison).
	Elapsed time.Duration
}

// PremiseViolation returns the typed premise failure (PC absent from
// workload, address never accessed) when retrieval detected one — the
// evidence a trick question must be rejected on.
func (c *Context) PremiseViolation() error {
	for _, ex := range c.Executed {
		if ex.Err == nil {
			continue
		}
		var pcErr *queryir.PCNotFoundError
		var addrErr *queryir.AddrNotFoundError
		if asErr(ex.Err, &pcErr) {
			return pcErr
		}
		if asErr(ex.Err, &addrErr) {
			return addrErr
		}
	}
	return nil
}

// asErr is a tiny errors.As wrapper avoiding repeated imports at call
// sites.
func asErr[T error](err error, target *T) bool {
	for err != nil {
		if t, ok := err.(T); ok {
			*target = t
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Retriever is the common retrieval interface.
//
// Concurrency contract: Retrieve must be safe for concurrent callers.
// All three implementations in this package satisfy it by carrying no
// mutable state — retrieval is read-only over the store (immutable once
// built, see db.Store) and any per-call scratch (embedding indexes for
// semantic fallback, context assembly) is call-local. Implementations
// added later (remote backends, shared caches) must uphold the same
// contract; internal/engine relies on it to serve concurrent asks
// through one retriever instance.
//
// Cancellation contract: Retrieve honors ctx between its retrieval
// queries — a canceled context makes it return promptly with a partial
// (or empty) bundle whose Err reports the cancellation. It never
// panics on a canceled context; callers that need a typed error check
// ctx themselves after the call (internal/engine's stage checkpoint).
type Retriever interface {
	// Name identifies the retriever ("sieve", "ranger", "llamaindex").
	Name() string
	// Retrieve assembles grounded context for the question, honoring
	// ctx cancellation between queries. Safe for concurrent use.
	Retrieve(ctx context.Context, question string) Context
}

// VocabFromStore derives the NLU vocabulary from a store's contents.
func VocabFromStore(s *db.Store) nlu.Vocabulary {
	return nlu.Vocabulary{Workloads: s.Workloads(), Policies: s.Policies()}
}

// expandQueries resolves the nlu sentinels into concrete per-policy /
// per-workload query fan-outs.
func expandQueries(s *db.Store, qs []queryir.Query) []queryir.Query {
	var out []queryir.Query
	for _, q := range qs {
		policies := []string{q.Policy}
		if q.Policy == nlu.AllPolicies {
			policies = s.Policies()
		}
		workloads := []string{q.Workload}
		if q.Workload == nlu.AllWorkloads {
			workloads = s.Workloads()
		}
		for _, w := range workloads {
			for _, p := range policies {
				qq := q
				qq.Workload = w
				qq.Policy = p
				out = append(out, qq)
			}
		}
	}
	return out
}

// renderResult formats one executed query as evidence text in the style
// of the paper's Figure 9 Ranger context.
func renderResult(ex ExecutedQuery) string {
	q := ex.Query
	where := fmt.Sprintf("workload %s, policy %s", q.Workload, q.Policy)
	if ex.Err != nil {
		return fmt.Sprintf("[%s] retrieval check: %v", where, ex.Err)
	}
	r := ex.Result
	var b strings.Builder
	switch r.Kind {
	case queryir.KindScalar:
		fmt.Fprintf(&b, "[%s] %s", where, describeScalar(q, r))
	case queryir.KindRows:
		fmt.Fprintf(&b, "[%s] %d matching accesses", where, r.MatchCount)
		for i, idx := range r.Rows {
			if i >= 3 {
				break
			}
			rec := r.Frame.Record(idx)
			outcome := "Cache Miss"
			if rec.Hit {
				outcome = "Cache Hit"
			}
			fmt.Fprintf(&b, "\n  PC %s addr 0x%x -> %s", queryir.PCRef(rec.PC), rec.Addr, outcome)
			if rec.EvictedAddr != 0 {
				if rec.EvictedReuseDist >= 0 {
					fmt.Fprintf(&b, "; evicted 0x%x (needed again in %d accesses)",
						rec.EvictedAddr, rec.EvictedReuseDist)
				} else {
					fmt.Fprintf(&b, "; evicted 0x%x (never needed again)", rec.EvictedAddr)
				}
			}
			if rec.AccessedReuseDist >= 0 {
				fmt.Fprintf(&b, "; inserted line needed again in %d accesses", rec.AccessedReuseDist)
			}
		}
	case queryir.KindGroups:
		fmt.Fprintf(&b, "[%s] %s by %s:", where, q.Agg, q.GroupBy)
		for i, g := range r.Groups {
			if i >= 12 {
				fmt.Fprintf(&b, "\n  ... (%d more groups)", len(r.Groups)-i)
				break
			}
			fmt.Fprintf(&b, "\n  %s: %.2f (n=%d)", groupKeyLabel(q.GroupBy, g.Key), g.Value, g.Count)
		}
	case queryir.KindKeys:
		fmt.Fprintf(&b, "[%s] distinct %s (%d):", where, q.GroupBy, len(r.Keys))
		for i, k := range r.Keys {
			if i >= 24 {
				fmt.Fprintf(&b, " ... (%d more)", len(r.Keys)-i)
				break
			}
			b.WriteString(" " + groupKeyLabel(q.GroupBy, k))
		}
	}
	return b.String()
}

func groupKeyLabel(groupBy string, key uint64) string {
	if groupBy == "set" {
		return fmt.Sprintf("set %d", key)
	}
	return queryir.PCRef(key)
}

func describeScalar(q queryir.Query, r queryir.Result) string {
	target := ""
	if q.PC != nil {
		target = " for PC " + queryir.PCRef(*q.PC)
	}
	switch q.Agg {
	case queryir.AggCount:
		return fmt.Sprintf("count%s = %.0f", target, r.Scalar)
	case queryir.AggHitCount:
		return fmt.Sprintf("hit count%s = %.0f", target, r.Scalar)
	case queryir.AggMissCount:
		return fmt.Sprintf("miss count%s = %.0f", target, r.Scalar)
	case queryir.AggHitRate:
		return fmt.Sprintf("hit rate%s = %.2f%%", target, r.Scalar)
	case queryir.AggMissRate:
		return fmt.Sprintf("miss rate%s = %.2f%%", target, r.Scalar)
	case queryir.AggMean:
		return fmt.Sprintf("mean %s%s = %.2f", q.Field, target, r.Scalar)
	case queryir.AggStd:
		return fmt.Sprintf("std %s%s = %.2f", q.Field, target, r.Scalar)
	case queryir.AggSum:
		return fmt.Sprintf("sum %s%s = %.2f", q.Field, target, r.Scalar)
	case queryir.AggMin:
		return fmt.Sprintf("min %s%s = %.2f", q.Field, target, r.Scalar)
	case queryir.AggMax:
		return fmt.Sprintf("max %s%s = %.2f", q.Field, target, r.Scalar)
	case queryir.AggMedian:
		return fmt.Sprintf("median %s%s = %.2f", q.Field, target, r.Scalar)
	default:
		return fmt.Sprintf("value%s = %.2f", target, r.Scalar)
	}
}
