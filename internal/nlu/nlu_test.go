package nlu

import (
	"testing"

	"cachemind/internal/db"
	"cachemind/internal/queryir"
)

func vocab() Vocabulary {
	return Vocabulary{
		Workloads: []string{"astar", "lbm", "mcf"},
		Policies:  []string{"belady", "lru", "mlp", "parrot"},
	}
}

func TestExtractHexEntities(t *testing.T) {
	e := Extract("Does the access with PC 0x401e31 and address 0x35e798a637f hit in lbm under PARROT?", vocab())
	if len(e.PCs) != 1 || e.PCs[0] != 0x401e31 {
		t.Errorf("PCs = %#x", e.PCs)
	}
	if len(e.Addrs) != 1 || e.Addrs[0] != 0x35e798a637f {
		t.Errorf("Addrs = %#x", e.Addrs)
	}
	if len(e.Workloads) != 1 || e.Workloads[0] != "lbm" {
		t.Errorf("Workloads = %v", e.Workloads)
	}
	if len(e.Policies) != 1 || e.Policies[0] != "parrot" {
		t.Errorf("Policies = %v", e.Policies)
	}
}

func TestExtractDeduplicatesHex(t *testing.T) {
	e := Extract("PC 0x4037ba vs PC 0x4037ba again", vocab())
	if len(e.PCs) != 1 {
		t.Errorf("PCs = %#x, want deduplicated", e.PCs)
	}
}

func TestExtractSets(t *testing.T) {
	e := Extract("Compare set 332 and set 1424 hit rates", vocab())
	if len(e.Sets) != 2 || e.Sets[0] != 332 || e.Sets[1] != 1424 {
		t.Errorf("Sets = %v", e.Sets)
	}
}

func TestExtractPolicyAliases(t *testing.T) {
	cases := []struct {
		q    string
		want string
	}{
		{"under Belady's optimal policy", "belady"},
		{"with the least recently used policy", "lru"},
		{"using the multi-layer perceptron", "mlp"},
		{"compare against OPT", "belady"},
	}
	for _, c := range cases {
		e := Extract(c.q, vocab())
		if len(e.Policies) != 1 || e.Policies[0] != c.want {
			t.Errorf("Extract(%q).Policies = %v, want [%s]", c.q, e.Policies, c.want)
		}
	}
}

func TestExtractPolicyOrderPreserved(t *testing.T) {
	e := Extract("Why does PARROT perform worse than Belady on lbm?", vocab())
	if len(e.Policies) != 2 || e.Policies[0] != "parrot" || e.Policies[1] != "belady" {
		t.Errorf("Policies = %v, want [parrot belady]", e.Policies)
	}
}

func TestExtractNoFalsePolicyHits(t *testing.T) {
	// "optimally" must not match the alias "optimal"; "lrux" not "lru".
	e := Extract("the cache performs optimally under lrux settings", vocab())
	if len(e.Policies) != 0 {
		t.Errorf("Policies = %v, want none", e.Policies)
	}
}

func TestExtractUnknownAliasNotInVocab(t *testing.T) {
	// mockingjay is a known alias but absent from this store's policies.
	e := Extract("under the mockingjay policy", vocab())
	if len(e.Policies) != 0 {
		t.Errorf("Policies = %v, want none (not in vocabulary)", e.Policies)
	}
}

func TestClassifyRepresentativeQuestions(t *testing.T) {
	cases := []struct {
		q    string
		want Intent
	}{
		{"Does PC 0x401dc9 and address 0x47ea85d37f result in a cache hit in lbm under PARROT?", IntentHitMiss},
		{"Does PC 0x4037aa in lbm access address 0x1b73be82e3f?", IntentHitMiss},
		{"What is the miss rate for PC 0x4037ba in mcf with PARROT?", IntentMissRate},
		{"Which policy has the lowest miss rate for PC 0x409270 in astar?", IntentPolicyCompare},
		{"How many times did PC 0x405832 appear in astar under LRU?", IntentCount},
		{"What is the average evicted reuse distance of PC 0x40170a for the lbm workload with MLP?", IntentArithmetic},
		{"How does increasing cache size affect miss rate? Compare increasing #sets vs #ways.", IntentConcept},
		{"Write code to compute hits for PC 0x4037ba and address 0xa3a0df3d9d in mcf under LRU.", IntentCodeGen},
		{"Why does Belady outperform LRU on PC 0x409270 in astar?", IntentPolicyAnalysis},
		{"Which workload has the highest cache miss rate under MLP?", IntentWorkloadAnalysis},
		{"Why does PC 0x4037ba have a high hit rate? Examine the assembly context and analyze.", IntentSemanticAnalysis},
		{"List all unique PCs in the mcf trace.", IntentListPCs},
		{"For astar workload and Belady replacement policy, could you list unique cache sets in ascending order?", IntentListSets},
		{"From the unique PCs, identify the PC causing the most cache misses.", IntentTopMissPC},
		{"Identify 5 hot and 5 cold sets by hit rate.", IntentSetStats},
		{"Compute standard deviation of reuse distance per PC.", IntentPerPCStat},
		{"Identify PCs suitable for bypassing to improve IPC.", IntentBypass},
	}
	for _, c := range cases {
		e := Extract(c.q, vocab())
		if got := Classify(c.q, e); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestIntentString(t *testing.T) {
	if IntentHitMiss.String() != "hit_miss" || Intent(99).String() != "unknown" {
		t.Error("intent names wrong")
	}
}

func TestParseHitMiss(t *testing.T) {
	p, err := Parse("Does the access with PC 0x401dc9 and address 0x47ea85d37f result in a cache hit or miss for the lbm workload and PARROT replacement policy?", vocab())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Queries) != 1 {
		t.Fatalf("queries = %d", len(p.Queries))
	}
	q := p.Queries[0]
	if q.Workload != "lbm" || q.Policy != "parrot" {
		t.Errorf("trace = %s/%s", q.Workload, q.Policy)
	}
	if q.PC == nil || *q.PC != 0x401dc9 || q.Addr == nil || *q.Addr != 0x47ea85d37f {
		t.Error("filters missing")
	}
	if q.Agg != queryir.AggRows {
		t.Errorf("agg = %v", q.Agg)
	}
}

func TestParseHitMissNeedsAddress(t *testing.T) {
	if _, err := Parse("Does PC 0x401dc9 hit or miss in lbm under LRU?", vocab()); err == nil {
		t.Error("hit/miss without address should fail to parse")
	}
}

func TestParseNeedsWorkload(t *testing.T) {
	if _, err := Parse("What is the miss rate for PC 0x4037ba under LRU?", vocab()); err == nil {
		t.Error("grounded intent without workload should fail")
	}
}

func TestParseMissRateDefaultsPolicyExpansion(t *testing.T) {
	p, err := Parse("What is the miss rate for PC 0x4037ba in mcf?", vocab())
	if err != nil {
		t.Fatal(err)
	}
	if p.Queries[0].Policy != AllPolicies {
		t.Errorf("policy = %q, want expansion sentinel", p.Queries[0].Policy)
	}
}

func TestParseArithmetic(t *testing.T) {
	p, err := Parse("What is the average evicted reuse distance of PC 0x40170a for the lbm workload with MLP?", vocab())
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queries[0]
	if q.Agg != queryir.AggMean || q.Field != db.ColEvictedReuse {
		t.Errorf("agg/field = %v/%s", q.Agg, q.Field)
	}
}

func TestParseArithmeticStd(t *testing.T) {
	p, err := Parse("Compute the standard deviation of the reuse distance for PC 0x4184b0 in mcf under LRU", vocab())
	if err != nil {
		t.Fatal(err)
	}
	if p.Queries[0].Agg != queryir.AggStd || p.Queries[0].Field != db.ColAccessReuse {
		t.Errorf("parsed %v/%s", p.Queries[0].Agg, p.Queries[0].Field)
	}
}

func TestParsePolicyCompareExpands(t *testing.T) {
	p, err := Parse("Which policy has the lowest miss rate for PC 0x409270 in astar?", vocab())
	if err != nil {
		t.Fatal(err)
	}
	if p.Queries[0].Policy != AllPolicies || p.Queries[0].Agg != queryir.AggMissRate {
		t.Errorf("query = %+v", p.Queries[0])
	}
}

func TestParseCount(t *testing.T) {
	p, err := Parse("How many times did PC 0x405832 appear in astar under LRU?", vocab())
	if err != nil {
		t.Fatal(err)
	}
	if p.Queries[0].Agg != queryir.AggCount || p.Queries[0].Policy != "lru" {
		t.Errorf("query = %+v", p.Queries[0])
	}
}

func TestParseListsAndTopK(t *testing.T) {
	p, err := Parse("List all unique PCs in the mcf trace under LRU.", vocab())
	if err != nil {
		t.Fatal(err)
	}
	if p.Queries[0].Agg != queryir.AggDistinct || p.Queries[0].GroupBy != "pc" {
		t.Errorf("list query = %+v", p.Queries[0])
	}
	p, err = Parse("From the unique PCs in mcf under LRU, identify the PC causing the most cache misses.", vocab())
	if err != nil {
		t.Fatal(err)
	}
	if p.Queries[0].GroupBy != "pc" || !p.Queries[0].SortDesc {
		t.Errorf("top query = %+v", p.Queries[0])
	}
}

func TestParseSetHotnessLimit(t *testing.T) {
	p, err := Parse("For astar and Belady, identify 5 hot and 5 cold sets by hit rate.", vocab())
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queries[0]
	if q.GroupBy != "set" || q.Agg != queryir.AggHitRate {
		t.Errorf("set query = %+v", q)
	}
}

func TestParseBypassTwoQueries(t *testing.T) {
	p, err := Parse("For mcf under belady, identify PCs suitable for bypassing to improve IPC.", vocab())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Queries) != 2 {
		t.Fatalf("bypass should produce 2 queries, got %d", len(p.Queries))
	}
}

func TestParsePolicyAnalysisPerPolicy(t *testing.T) {
	p, err := Parse("Why does Belady outperform LRU on PC 0x409270 in astar?", vocab())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Queries) != 2 {
		t.Fatalf("expected one query per mentioned policy, got %d", len(p.Queries))
	}
	if p.Queries[0].Policy == p.Queries[1].Policy {
		t.Error("queries should target different policies")
	}
}

func TestParseConceptNoQueries(t *testing.T) {
	p, err := Parse("How does increasing cache size affect miss rate? Compare increasing #sets vs #ways.", vocab())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Queries) != 0 {
		t.Errorf("concept questions need no retrieval, got %d queries", len(p.Queries))
	}
}

func TestParseUnknownFails(t *testing.T) {
	if _, err := Parse("tell me something nice", vocab()); err == nil {
		t.Error("unintelligible input should fail")
	}
}

func TestSemanticWorkloadFallback(t *testing.T) {
	desc := map[string]string{
		"astar": "path finding grid search",
		"lbm":   "lattice boltzmann fluid dynamics",
		"mcf":   "network simplex vehicle scheduling",
	}
	w, score := SemanticWorkload("questions about the fluid dynamics benchmark", vocab(), desc)
	if w != "lbm" {
		t.Errorf("semantic workload = %s (score %.2f), want lbm", w, score)
	}
}

func TestLimitFrom(t *testing.T) {
	if got := limitFrom(Entities{Numbers: []float64{5}}, 10); got != 5 {
		t.Errorf("limit = %d", got)
	}
	if got := limitFrom(Entities{Numbers: []float64{3.5, 10000}}, 10); got != 10 {
		t.Errorf("limit = %d, want default", got)
	}
}
