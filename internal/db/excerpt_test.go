package db

import (
	"strings"
	"testing"
)

func TestRenderExcerptFullSnapshot(t *testing.T) {
	s := testStore(t)
	f, _ := s.Frame("astar", "lru")
	i := f.FirstSnapshotRow(5000)
	if i < 0 {
		t.Fatal("no snapshot rows")
	}
	out := f.RenderExcerpt(i)
	for _, want := range []string{
		"Cache Access Trace", "PC: 0x", "Address: 0x", "Set ID: 0b",
		"Cache Lines", "Assembly (",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("excerpt missing %q:\n%s", want, out)
		}
	}
	// The set id must render in binary (only 0/1 digits after 0b).
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "Set ID: 0b"); ok {
			for _, c := range rest {
				if c != '0' && c != '1' {
					t.Errorf("set id not binary: %q", line)
				}
			}
		}
	}
}

func TestRenderExcerptPlainRow(t *testing.T) {
	s := testStore(t)
	f, _ := s.Frame("mcf", "lru")
	// Row 1 carries no snapshot (SnapshotEvery > 1).
	out := f.RenderExcerpt(1)
	if strings.Contains(out, "Cache Lines") {
		t.Error("plain rows should not render resident lines")
	}
	if !strings.Contains(out, "Assembly (") {
		t.Error("assembly context always renders")
	}
}

func TestFirstSnapshotRow(t *testing.T) {
	s := testStore(t)
	f, _ := s.Frame("lbm", "lru")
	// Row 0 is sampled but its set is still empty (cold cache), so the
	// first *non-empty* snapshot appears at a later sampled row.
	got := f.FirstSnapshotRow(0)
	if got < 0 {
		t.Fatal("no snapshot rows at all")
	}
	if got%64 != 0 {
		t.Errorf("first snapshot row %d is not on the sampling grid", got)
	}
	if got := f.FirstSnapshotRow(f.Len()); got != -1 {
		t.Errorf("past-the-end snapshot = %d, want -1", got)
	}
}
