package lint

import (
	"go/ast"
	"strings"
)

// LockScopeAnalyzer enforces the shard-lock discipline: the engine's
// throughput rests on shard and session mutexes being held for
// nanoseconds, never across anything that can block or recurse. Within
// a held region (a sync.Mutex/RWMutex Lock to its matching Unlock in
// the same function, or to function end for a deferred Unlock) the
// analyzer flags:
//
//   - channel sends — except non-blocking sends in a select with a
//     default clause, the engine's sanctioned fire-and-forget idiom;
//   - calls into the slow pipeline: Retrieve, Answer, AnalysisAnswer,
//     Invoke — the retrieval/generation stages that take milliseconds;
//   - HTTP round-trips: net/http Do/Get/Post/PostForm/Head and any
//     RoundTrip call.
//
// Separately, every Lock/RLock must have a matching Unlock/RUnlock on
// the same receiver somewhere in the same function — a lock whose
// release lives in a different function is impossible to scope-check
// and is flagged (waive with //cachemind:allow-lock for the rare
// handoff pattern, e.g. sync.Once-style latches).
//
// Matching is textual on the receiver expression (c.mu, s.shards[i].mu):
// the analyzer pairs each Lock with the next Unlock of the same
// spelling. This is deliberately simple — the repo's locks are all
// named fields — and errs toward flagging, with //cachemind:allow-lock
// as the escape hatch.
var LockScopeAnalyzer = &Analyzer{
	Name: "lockscope",
	Doc:  "flag blocking work (channel sends, pipeline calls, HTTP) inside mutex-held regions and unpaired Locks",
	Run:  runLockScope,
}

// slowCalleeNames are methods that enter the cold pipeline; holding a
// shard lock across them serializes the cache behind generation.
var slowCalleeNames = map[string]bool{
	"Retrieve":       true,
	"Answer":         true,
	"AnalysisAnswer": true,
	"Invoke":         true,
	"RoundTrip":      true,
}

func runLockScope(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockScopeFunc(pass, f, fd)
		}
	}
	return nil
}

// lockOp is one Lock/Unlock call found in a function body.
type lockOp struct {
	call     *ast.CallExpr
	recv     string // source spelling of the receiver expression
	acquire  bool   // Lock/RLock vs Unlock/RUnlock
	deferred bool
	offset   int // file offset, for ordering and region bounds
}

func checkLockScopeFunc(pass *Pass, f *ast.File, fd *ast.FuncDecl) {
	var ops []lockOp
	deferredCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferredCalls[ds.Call] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		var acquire bool
		switch fn.Name() {
		case "Lock", "RLock":
			acquire = true
		case "Unlock", "RUnlock":
			acquire = false
		default:
			return true
		}
		ops = append(ops, lockOp{
			call:     call,
			recv:     exprString(pass, sel.X),
			acquire:  acquire,
			deferred: deferredCalls[call],
			offset:   pass.Fset.Position(call.Pos()).Offset,
		})
		return true
	})
	if len(ops) == 0 {
		return
	}

	funcEnd := pass.Fset.Position(fd.Body.End()).Offset

	// Pair each acquire with the next same-receiver release; build the
	// held regions.
	type region struct{ start, end int }
	var regions []region
	used := make([]bool, len(ops))
	for i, op := range ops {
		if !op.acquire {
			continue
		}
		end := -1
		for j, rel := range ops {
			if used[j] || rel.acquire || rel.recv != op.recv || j == i {
				continue
			}
			if rel.deferred {
				// A deferred release guards to function end regardless of
				// where the defer statement sits.
				used[j] = true
				end = funcEnd
				break
			}
			if rel.offset > op.offset {
				used[j] = true
				end = rel.offset
				break
			}
		}
		if end < 0 {
			if !pass.waived(f, op.call.Pos(), dirAllowLock) {
				pass.Reportf(op.call.Pos(), "%s.Lock in %s has no matching Unlock in this function", op.recv, funcDisplayName(fd))
			}
			continue
		}
		regions = append(regions, region{start: pass.Fset.Position(op.call.End()).Offset, end: end})
	}
	if len(regions) == 0 {
		return
	}
	inHeld := func(n ast.Node) bool {
		off := pass.Fset.Position(n.Pos()).Offset
		for _, r := range regions {
			if off > r.start && off < r.end {
				return true
			}
		}
		return false
	}

	// Non-blocking sends (select with a default clause) are sanctioned.
	allowedSends := map[*ast.SendStmt]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					allowedSends[send] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.SendStmt:
			if allowedSends[node] || !inHeld(node) {
				return true
			}
			if !pass.waived(f, node.Pos(), dirAllowLock) {
				pass.Reportf(node.Pos(), "blocking channel send while a mutex is held in %s", funcDisplayName(fd))
			}
		case *ast.CallExpr:
			if !inHeld(node) {
				return true
			}
			fn := calleeFunc(pass.Info, node)
			if fn == nil {
				return true
			}
			switch {
			case slowCalleeNames[fn.Name()]:
				if !pass.waived(f, node.Pos(), dirAllowLock) {
					pass.Reportf(node.Pos(), "call to slow-pipeline method %s while a mutex is held in %s", fn.Name(), funcDisplayName(fd))
				}
			case fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && httpOutboundNames[fn.Name()]:
				if !pass.waived(f, node.Pos(), dirAllowLock) {
					pass.Reportf(node.Pos(), "HTTP round-trip (%s.%s) while a mutex is held in %s", fn.Pkg().Path(), fn.Name(), funcDisplayName(fd))
				}
			}
		}
		return true
	})
}

// httpOutboundNames are net/http calls that perform a network
// round-trip.
var httpOutboundNames = map[string]bool{
	"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true,
}

// exprString renders the source spelling of a receiver expression for
// textual lock pairing.
func exprString(pass *Pass, e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		b.WriteString(x.Name)
	case *ast.SelectorExpr:
		writeExpr(b, x.X)
		b.WriteString(".")
		b.WriteString(x.Sel.Name)
	case *ast.IndexExpr:
		writeExpr(b, x.X)
		b.WriteString("[")
		writeExpr(b, x.Index)
		b.WriteString("]")
	case *ast.ParenExpr:
		writeExpr(b, x.X)
	case *ast.StarExpr:
		b.WriteString("*")
		writeExpr(b, x.X)
	case *ast.UnaryExpr:
		b.WriteString(x.Op.String())
		writeExpr(b, x.X)
	case *ast.BasicLit:
		b.WriteString(x.Value)
	case *ast.CallExpr:
		writeExpr(b, x.Fun)
		b.WriteString("(...)")
	default:
		b.WriteString("?")
	}
}
