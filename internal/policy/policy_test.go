package policy

import (
	"testing"
	"testing/quick"

	"cachemind/internal/sim"
	"cachemind/internal/trace"
	"cachemind/internal/workload"
)

func tinyCfg() sim.Config {
	return sim.Config{Name: "test", Sets: 16, Ways: 4, Latency: 1}
}

func llcCfg() sim.Config {
	return sim.Config{Name: "LLC", Sets: 256, Ways: 8, Latency: 26}
}

// replay runs accs through a cache with the given policy and returns the
// cache for inspection.
func replay(t *testing.T, name string, cfg sim.Config, accs []trace.Access, opts Options) *sim.Cache {
	t.Helper()
	if name == "belady" && opts.Oracle == nil {
		opts.Oracle = trace.NextUseOracle(accs)
	}
	p, err := New(name, cfg, opts)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	c := sim.NewCache(cfg, p)
	for i, a := range accs {
		c.Access(sim.AccessInfo{Time: uint64(i), PC: a.PC, LineAddr: a.LineAddr(), Write: a.Write})
	}
	return c
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"belady", "brrip", "dip", "drrip", "hawkeye", "lru",
		"mlp", "mockingjay", "parrot", "plru", "random", "ship", "srrip"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, n := range want {
		if Describe(n) == "Unknown replacement policy." {
			t.Errorf("no description for %q", n)
		}
	}
	if Describe("bogus") != "Unknown replacement policy." {
		t.Error("unknown policy should have fallback description")
	}
}

func TestCorePolicies(t *testing.T) {
	core := Core()
	if len(core) != 4 || core[0] != "belady" || core[3] != "parrot" {
		t.Errorf("Core() = %v", core)
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("bogus", tinyCfg(), Options{}); err == nil {
		t.Error("expected error for unknown policy")
	}
}

func TestBeladyRequiresOracle(t *testing.T) {
	if _, err := New("belady", tinyCfg(), Options{}); err == nil {
		t.Error("belady without oracle should fail")
	}
}

func TestParrotRequiresTrain(t *testing.T) {
	if _, err := New("parrot", tinyCfg(), Options{}); err == nil {
		t.Error("parrot without training trace should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on error")
		}
	}()
	MustNew("bogus", tinyCfg(), Options{})
}

// lruTrace builds a strict-LRU probe: fill ways, touch all but one, then
// insert a conflicting line; the untouched line must be the victim.
func TestLRUVictimIsOldest(t *testing.T) {
	cfg := sim.Config{Name: "t", Sets: 1, Ways: 4, Latency: 1}
	line := func(i int) uint64 { return uint64(i) * trace.LineSize }
	accs := []trace.Access{
		{PC: 1, Addr: line(0)}, {PC: 1, Addr: line(1)},
		{PC: 1, Addr: line(2)}, {PC: 1, Addr: line(3)},
		// Touch 0, 2, 3 again: line(1) is now LRU.
		{PC: 1, Addr: line(0)}, {PC: 1, Addr: line(2)}, {PC: 1, Addr: line(3)},
		{PC: 1, Addr: line(4)}, // evicts line(1)
		{PC: 1, Addr: line(1)}, // must miss
		{PC: 1, Addr: line(0)}, // line(0) touched at t=4... still resident?
	}
	c := replay(t, "lru", cfg, accs, Options{})
	// Accesses 0-3 miss (cold), 4-6 hit, 7 misses+evicts line1,
	// 8 misses (line1 gone) + evicts oldest, 9: line0 was evicted by 8
	// (oldest touch t=4 vs line2 t=5, line3 t=6, line4 t=7) -> miss.
	if c.Hits != 3 {
		t.Errorf("hits = %d, want 3", c.Hits)
	}
}

func TestRandomDeterministicWithSeed(t *testing.T) {
	accs := workload.MCF.Generate(4000, 1)
	a := replay(t, "random", llcCfg(), accs, Options{Seed: 7})
	b := replay(t, "random", llcCfg(), accs, Options{Seed: 7})
	if a.Hits != b.Hits {
		t.Errorf("same seed produced different hit counts: %d vs %d", a.Hits, b.Hits)
	}
}

// Belady must dominate every practical policy on total hit rate.
func TestBeladyIsUpperBound(t *testing.T) {
	for _, w := range []*workload.Workload{workload.Astar, workload.LBM, workload.MCF} {
		accs := w.Generate(30000, 3)
		oracle := trace.NextUseOracle(accs)
		belady := replay(t, "belady", llcCfg(), accs, Options{Oracle: oracle})
		for _, name := range []string{"lru", "random", "srrip", "drrip", "ship", "plru", "dip"} {
			other := replay(t, name, llcCfg(), accs, Options{Seed: 11})
			if other.Hits > belady.Hits {
				t.Errorf("%s: %s hits (%d) exceed Belady's (%d)", w.Name(), name, other.Hits, belady.Hits)
			}
		}
	}
}

// On a cyclic scan one line longer than the cache, LRU gets zero hits
// after the cold pass while Belady keeps most of the working set.
func TestScanResistanceContrast(t *testing.T) {
	cfg := sim.Config{Name: "t", Sets: 1, Ways: 4, Latency: 1}
	var accs []trace.Access
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 5; i++ { // 5 lines cycling through a 4-way set
			accs = append(accs, trace.Access{PC: 9, Addr: uint64(i) * trace.LineSize})
		}
	}
	lruC := replay(t, "lru", cfg, accs, Options{})
	beladyC := replay(t, "belady", cfg, accs, Options{})
	if lruC.Hits != 0 {
		t.Errorf("LRU on cyclic thrash should get 0 hits, got %d", lruC.Hits)
	}
	// Belady: first 5 cold misses, then keeps 3 of 4 hot: hit rate 3/5.
	if beladyC.Hits < uint64(len(accs)/2) {
		t.Errorf("Belady hits = %d of %d, want > half", beladyC.Hits, len(accs))
	}
}

// SHiP's defining mechanism: a PC whose lines die without reuse trains
// its signature counter to zero and is inserted at distant re-reference
// (immediate victim); a PC whose lines are reused keeps long
// re-reference insertion.
func TestSHiPSignatureTraining(t *testing.T) {
	cfg := sim.Config{Name: "t", Sets: 4, Ways: 2, Latency: 1}
	s := newSHiP(cfg)
	c := sim.NewCache(cfg, s)
	deadPC, hotPC := uint64(0x2000), uint64(0x1000)
	tm := uint64(0)
	next := func(pc, addr uint64) sim.Event {
		tm++
		return c.Access(sim.AccessInfo{Time: tm, PC: pc, LineAddr: addr})
	}
	// Stream dead-PC lines through set 0 until the signature trains down.
	for i := uint64(0); i < 64; i++ {
		next(deadPC, i*4*trace.LineSize) // all map to set 0
	}
	if got := s.shct[shipSignature(deadPC)]; got != 0 {
		t.Errorf("dead PC signature counter = %d, want 0", got)
	}
	// A trained-dead PC must now be inserted at distant re-reference.
	ev := next(deadPC, 999*4*trace.LineSize)
	if ev.Hit {
		t.Fatal("expected miss")
	}
	if got := s.rrpv[0][ev.Way]; got != rripDistant {
		t.Errorf("dead PC inserted at rrpv %d, want %d", got, rripDistant)
	}
	// Reused PC: insert then hit repeatedly; signature must rise and
	// insertion must stay at long re-reference.
	hotAddr := uint64(1 * trace.LineSize) // set 1
	next(hotPC, hotAddr)
	for i := 0; i < 4; i++ {
		// Re-insert fresh lines so multiple distinct lines reuse.
		a := hotAddr + uint64(i+1)*4*trace.LineSize
		next(hotPC, a)
		next(hotPC, a) // immediate reuse trains the signature up
	}
	if got := s.shct[shipSignature(hotPC)]; got == 0 {
		t.Error("reused PC signature should not be zero")
	}
	ev = next(hotPC, 777*4*trace.LineSize+hotAddr)
	if s.rrpv[1][ev.Way] != rripLong {
		t.Errorf("reused PC inserted at rrpv %d, want %d", s.rrpv[1][ev.Way], rripLong)
	}
}

// SRRIP promotes on hit and ages collectively: after a hit the line must
// be the last chosen victim in its set.
func TestSRRIPHitPromotion(t *testing.T) {
	cfg := sim.Config{Name: "t", Sets: 1, Ways: 4, Latency: 1}
	r := newRRIP(cfg, rripStatic)
	c := sim.NewCache(cfg, r)
	tm := uint64(0)
	next := func(addr uint64) sim.Event {
		tm++
		return c.Access(sim.AccessInfo{Time: tm, PC: 1, LineAddr: addr})
	}
	for i := uint64(0); i < 4; i++ {
		next(i * trace.LineSize)
	}
	next(0) // promote line 0 to rrpv 0
	// Insert conflicting lines: line 0 must survive the next three
	// evictions (others age out first).
	for i := uint64(10); i < 13; i++ {
		ev := next(i * trace.LineSize)
		if ev.Evicted.Valid && ev.Evicted.Addr == 0 {
			t.Fatalf("promoted line evicted too early (insert %d)", i)
		}
	}
	if !c.Lookup(0) {
		t.Error("promoted line should still be resident")
	}
}

// Every policy must complete a mixed replay without panicking and hit at
// least the trivially-hot subset.
func TestAllPoliciesRunEveryWorkload(t *testing.T) {
	train := workload.MCF.Generate(8000, 99)
	for _, name := range Names() {
		accs := workload.Astar.Generate(10000, 5)
		c := replay(t, name, llcCfg(), accs, Options{
			Seed:   3,
			Oracle: trace.NextUseOracle(accs),
			Train:  train,
		})
		if c.Accesses != uint64(len(accs)) {
			t.Errorf("%s: accesses = %d, want %d", name, c.Accesses, len(accs))
		}
		if c.Hits == 0 {
			t.Errorf("%s: zero hits on astar (hot open list should hit)", name)
		}
		if c.Hits+c.Misses != c.Accesses {
			t.Errorf("%s: hits+misses != accesses", name)
		}
	}
}

func TestParrotApproximatesBelady(t *testing.T) {
	train := workload.LBM.Generate(40000, 21)
	accs := workload.LBM.Generate(40000, 22)
	oracle := trace.NextUseOracle(accs)
	belady := replay(t, "belady", llcCfg(), accs, Options{Oracle: oracle})
	parrot := replay(t, "parrot", llcCfg(), accs, Options{Train: train})
	lruC := replay(t, "lru", llcCfg(), accs, Options{})
	if parrot.Hits <= lruC.Hits {
		t.Errorf("PARROT hits (%d) should beat LRU (%d) on lbm", parrot.Hits, lruC.Hits)
	}
	if parrot.Hits > belady.Hits {
		t.Errorf("PARROT hits (%d) must not beat Belady (%d) in aggregate", parrot.Hits, belady.Hits)
	}
}

func TestParrotDeterministicTraining(t *testing.T) {
	train := workload.MCF.Generate(10000, 4)
	a := TrainParrot(llcCfg(), train)
	b := TrainParrot(llcCfg(), train)
	if a.weights != b.weights {
		t.Errorf("training not deterministic: %v vs %v", a.weights, b.weights)
	}
}

func TestMLPDeterministicWithSeed(t *testing.T) {
	accs := workload.LBM.Generate(15000, 6)
	a := replay(t, "mlp", llcCfg(), accs, Options{Seed: 5})
	b := replay(t, "mlp", llcCfg(), accs, Options{Seed: 5})
	if a.Hits != b.Hits {
		t.Errorf("MLP not deterministic: %d vs %d hits", a.Hits, b.Hits)
	}
}

func TestMockingjayRDPLearnsStablePCs(t *testing.T) {
	cfg := llcCfg()
	p := NewMockingjay(cfg, nil)
	c := sim.NewCache(cfg, p)
	accs := workload.MILC.Generate(120000, 8)
	for i, a := range accs {
		c.Access(sim.AccessInfo{Time: uint64(i), PC: a.PC, LineAddr: a.LineAddr(), Write: a.Write})
	}
	snap := p.RDPSnapshot()
	if len(snap) == 0 {
		t.Fatal("RDP learned nothing")
	}
}

func TestMockingjayTrainFilter(t *testing.T) {
	cfg := llcCfg()
	allowed := uint64(0x4184b0)
	p := NewMockingjay(cfg, func(pc uint64) bool { return pc == allowed })
	c := sim.NewCache(cfg, p)
	for i, a := range workload.MILC.Generate(80000, 8) {
		c.Access(sim.AccessInfo{Time: uint64(i), PC: a.PC, LineAddr: a.LineAddr(), Write: a.Write})
	}
	for pc := range p.RDPSnapshot() {
		if pc != allowed {
			t.Errorf("RDP trained on filtered-out PC %#x", pc)
		}
	}
}

// Property: Victim always returns a legal way (or bypass) for every
// policy, under arbitrary line states.
func TestVictimLegalProperty(t *testing.T) {
	cfg := tinyCfg()
	train := workload.MCF.Generate(3000, 2)
	pols := make([]sim.ReplacementPolicy, 0, len(Names()))
	oracle := make([]int, 100000)
	for i := range oracle {
		oracle[i] = i + 1
	}
	for _, n := range Names() {
		p, err := New(n, cfg, Options{Seed: 1, Oracle: oracle, Train: train})
		if err != nil {
			t.Fatalf("New(%s): %v", n, err)
		}
		pols = append(pols, p)
	}
	f := func(tm uint16, pcSeed uint8) bool {
		lines := make([]sim.Line, cfg.Ways)
		for w := range lines {
			lines[w] = sim.Line{
				Valid: true, Addr: uint64(w) * trace.LineSize,
				PC:        uint64(pcSeed) + uint64(w),
				FillTime:  uint64(tm) / 2,
				LastTouch: uint64(tm),
			}
		}
		info := sim.AccessInfo{Time: uint64(tm) + 1, PC: uint64(pcSeed), LineAddr: 512 * trace.LineSize, Set: int(tm) % cfg.Sets}
		for _, p := range pols {
			v := p.Victim(info, lines)
			if v != sim.BypassWay && (v < 0 || v >= cfg.Ways) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Scorer policies must return one score per way.
func TestScorerShapes(t *testing.T) {
	accs := workload.Astar.Generate(5000, 1)
	train := workload.Astar.Generate(5000, 2)
	for _, name := range []string{"lru", "srrip", "ship", "belady", "parrot", "mlp", "mockingjay"} {
		cfg := llcCfg()
		p, err := New(name, cfg, Options{Seed: 1, Oracle: trace.NextUseOracle(accs), Train: train})
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		c := sim.NewCache(cfg, p)
		for i, a := range accs {
			c.Access(sim.AccessInfo{Time: uint64(i), PC: a.PC, LineAddr: a.LineAddr()})
		}
		scores := c.Scores(0)
		if scores == nil {
			t.Errorf("%s: expected scores", name)
			continue
		}
		if len(scores) != cfg.Ways {
			t.Errorf("%s: %d scores for %d ways", name, len(scores), cfg.Ways)
		}
	}
}
