package bench

import (
	"math/rand"
	"strings"
)

// SampleMix draws a deterministic question stream of length n from the
// suite — the workload shape cmd/loadgen and the CI perf gate replay.
// repeat (clamped to [0, 1]) is the probability that a draw re-asks a
// question already emitted earlier in the stream, which is what
// exercises answer caches downstream; non-repeat draws walk a
// seed-shuffled order over the whole suite, so at repeat 0 the first
// len(suite) draws cover every question exactly once. The stream is a
// pure function of (suite, n, seed, repeat): identical inputs replay
// identical load, which is what makes BENCH_loadgen.json numbers
// comparable across runs and machines.
func SampleMix(s *Suite, n int, seed int64, repeat float64) []string {
	return SampleMixParaphrase(s, n, seed, repeat, 0)
}

// SampleMixParaphrase is SampleMix with paraphrase groups: paraphrase
// (clamped to [0, 1]) is the probability that a repeat draw is emitted
// as a reworded variant of the earlier question instead of its exact
// bytes — the similarity-group workload shape of rigrun's queries.json
// ("What is recursion?" / "Explain recursion" / "How does recursion
// work?"), which is what exercises a semantic cache tier downstream:
// a variant misses the exact hash but embeds within ~0.92 cosine of
// its original. At paraphrase 0 the stream is byte-identical to
// SampleMix for the same (suite, n, seed, repeat) — the paraphrase
// coin is only tossed when the knob is live, so the rng consumption
// (and therefore every draw) is unchanged.
func SampleMixParaphrase(s *Suite, n int, seed int64, repeat, paraphrase float64) []string {
	if n <= 0 || len(s.Questions) == 0 {
		return nil
	}
	if repeat < 0 {
		repeat = 0
	}
	if repeat > 1 {
		repeat = 1
	}
	if paraphrase < 0 {
		paraphrase = 0
	}
	if paraphrase > 1 {
		paraphrase = 1
	}
	rng := rand.New(rand.NewSource(seed))
	order := shuffledIndices(len(s.Questions), rng)
	out := make([]string, 0, n)
	next := 0 // position in order of the next fresh draw
	for len(out) < n {
		if len(out) > 0 && rng.Float64() < repeat {
			q := out[rng.Intn(len(out))]
			if paraphrase > 0 && rng.Float64() < paraphrase {
				q = Paraphrase(q, rng.Intn(ParaphraseVariants))
			}
			out = append(out, q)
			continue
		}
		if next == len(order) {
			// Suite exhausted: recycle the shuffled order so fresh
			// draws keep covering every question.
			next = 0
		}
		out = append(out, s.Questions[order[next]].Text)
		next++
	}
	return out
}

// ParaphraseVariants is how many distinct rewordings Paraphrase
// renders per question.
const ParaphraseVariants = 4

// Paraphrase deterministically rewords q into variant form — same
// intent, different bytes, high embedding similarity (≥ ~0.92 cosine
// under internal/embed for the suite's question shapes, comfortably
// above a 0.85 semantic threshold while unrelated suite questions stay
// below ~0.3). The transforms mirror rigrun's semantic similarity
// groups: surface rewordings a human would type for the same ask. A
// variant can coincide with q (e.g. lowercasing an already-lowercase
// question) — callers get an exact repeat then, which is still a valid
// draw.
func Paraphrase(q string, variant int) string {
	switch v := ((variant % ParaphraseVariants) + ParaphraseVariants) % ParaphraseVariants; v {
	case 0:
		return strings.ToLower(q)
	case 1:
		return strings.ToUpper(q)
	case 2:
		// Swap the terminal punctuation ("." ↔ "?"; append "?" when
		// bare) — the smallest byte change that still defeats the
		// exact hash.
		if strings.HasSuffix(q, "?") {
			return strings.TrimRight(q, "?") + "."
		}
		return strings.TrimRight(q, ".!") + "?"
	default:
		return "Please " + strings.ToLower(q)
	}
}
