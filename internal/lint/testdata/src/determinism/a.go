// Package determinism is the cachemindlint determinism fixture.
//
//cachemind:deterministic
package determinism

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// goodSeeded is the sanctioned randomness idiom: an explicit seed, so
// methods on the generator are reproducible.
func goodSeeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// goodSortedRange is the sanctioned map-output idiom: collect, then
// sort before the order can be observed.
func goodSortedRange(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodCountingRange only aggregates — order cannot leak.
func goodCountingRange(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// waivedClock shows the escape hatch for measurements that never reach
// output bytes.
func waivedClock() time.Time {
	//cachemind:allow-nondet log-only timestamp, not part of benchmark output
	return time.Now()
}

func badClock() time.Time {
	return time.Now() // want `time\.Now in deterministic scope`
}

func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in deterministic scope`
}

func badGlobalRand(n int) int {
	return rand.Intn(n) // want `math/rand\.Intn in deterministic scope`
}

func badUnsortedRange(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration feeds ordered output without a sort barrier`
		keys = append(keys, k)
	}
	return keys
}

func badPrintedRange(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration feeds ordered output without a sort barrier`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
