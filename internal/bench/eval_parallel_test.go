package bench

import (
	"reflect"
	"testing"

	"cachemind/internal/llm"
	"cachemind/internal/retriever"
	"cachemind/internal/testfix"
)

// evalPipeline builds the default (Ranger TG / Sieve ARA) pipeline over
// the shared fixture store at the given parallelism.
func evalPipeline(profile *llm.Profile, par int) Pipeline {
	store := testfix.Store()
	return Pipeline{
		TGRetriever:  retriever.NewRanger(store),
		ARARetriever: retriever.NewSieve(store),
		Profile:      profile,
		Parallelism:  par,
	}
}

// TestEvaluateParallelDeterminism asserts the tentpole requirement on
// the evaluation path: a Parallelism=8 run produces a report identical
// to the serial Parallelism=1 run — same per-question results in the
// same order, same category tallies, same rendered report.
func TestEvaluateParallelDeterminism(t *testing.T) {
	s := suite(t)
	for _, profile := range llm.Catalogue() {
		serial := Evaluate(s, evalPipeline(profile, 1))
		par := Evaluate(s, evalPipeline(profile, 8))

		if len(serial.Results) != len(par.Results) {
			t.Fatalf("%s: %d vs %d results", profile.ID, len(serial.Results), len(par.Results))
		}
		for i := range serial.Results {
			if !reflect.DeepEqual(serial.Results[i], par.Results[i]) {
				t.Fatalf("%s: result %d (%s) differs\nserial  %+v\nparallel %+v",
					profile.ID, i, serial.Results[i].Question.ID,
					serial.Results[i], par.Results[i])
			}
		}
		for _, c := range Categories() {
			if *serial.PerCat[c] != *par.PerCat[c] {
				t.Errorf("%s: category %s differs: serial %+v parallel %+v",
					profile.ID, c, *serial.PerCat[c], *par.PerCat[c])
			}
		}
		if ss, ps := serial.String(), par.String(); ss != ps {
			t.Errorf("%s: rendered reports differ\n--- serial ---\n%s\n--- parallel ---\n%s",
				profile.ID, ss, ps)
		}
		if serial.WeightedTotalPct() != par.WeightedTotalPct() {
			t.Errorf("%s: weighted totals differ: %.4f vs %.4f",
				profile.ID, serial.WeightedTotalPct(), par.WeightedTotalPct())
		}
	}
}

// TestEvaluateParallelismVariants pins the default (0 → NumCPU) and
// oversubscribed settings to the serial report.
func TestEvaluateParallelismVariants(t *testing.T) {
	s := suite(t)
	profile, _ := llm.ByID("gpt-4o")
	want := Evaluate(s, evalPipeline(profile, 1)).String()
	for _, par := range []int{0, 3, 256} {
		if got := Evaluate(s, evalPipeline(profile, par)).String(); got != want {
			t.Errorf("Parallelism=%d report differs from serial:\n%s", par, got)
		}
	}
}
